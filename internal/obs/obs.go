// Package obs is the deterministic observability layer for the bolt
// serving stack: request-lifecycle spans on the simulated clock, a
// metrics registry with fixed-bucket histograms, and a Chrome
// trace-event exporter whose output is byte-identical across runs.
//
// Everything here is priced in simulated seconds. Spans record *model*
// decisions (which bucket the planner chose, what each device class
// would have cost, which worker won the EFT race), not host wall-clock
// noise, so two seeded runs of the same workload export the same bytes
// and a trace can be replayed against the scheduler as an oracle.
//
// The span taxonomy mirrors a request's path through the stack:
//
//	enqueue  -> plan -> compile -> dispatch -> execute -> deliver
//	(request)  (batch) (variant)   (batch)     (batch)    (request)
//
// with fleet-level route / hedge / retry spans wrapping the per-replica
// tree. Spans are collected into per-worker shards (one mutex each,
// never contended on the hot path because each emitting goroutine owns
// its shard) and merged into one canonical order at query/export time.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Span kinds. These are the span names used by the serving stack; the
// exporter and the query API treat them as opaque strings, so packages
// may add their own.
const (
	KindRequest  = "request"  // per-request root: arrival -> delivery
	KindEnqueue  = "enqueue"  // batch-formation wait inside the queue
	KindPlan     = "plan"     // batcher decision: bucket, padding, continuous
	KindCompile  = "compile"  // variant compile (cold / warm / predicted)
	KindDispatch = "dispatch" // EFT placement across device classes
	KindExecute  = "execute"  // batch on a worker's simulated device
	KindDeliver  = "deliver"  // result handed back to the caller
	KindRoute    = "route"    // fleet: replica choice, wraps the attempt
	KindHedge    = "hedge"    // fleet: duplicate attempt, winner/loser
	KindRetry    = "retry"    // fleet: failed attempt re-routed
)

// Span categories, used as the Chrome trace "cat" field.
const (
	CatRequest = "request"
	CatBatch   = "batch"
	CatCompile = "compile"
	CatFleet   = "fleet"
)

// Arg is one key/value annotation on a span. Args keep their insertion
// order in the query API; the JSON exporter sorts keys for stable
// bytes.
type Arg struct {
	Key string
	Val any // string, bool, int, int64, or float64
}

// Span is one timed event on the simulated clock. Start and Dur are in
// simulated seconds. Proc and Track place the span on a Perfetto
// process/thread pair; Req groups the spans of one request so tests can
// reassemble its lifecycle tree.
type Span struct {
	Name  string
	Cat   string
	Proc  int    // process id from Tracer.RegisterProcess
	Track string // track (thread) name within the process
	Req   int64  // request id, 0 if not request-scoped
	Start float64
	Dur   float64
	Args  []Arg

	seq uint64 // per-shard emission order; sort tiebreak only
}

// argString renders the args deterministically for canonical ordering.
func (sp *Span) argString() string {
	if len(sp.Args) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range sp.Args {
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(formatArg(a.Val))
		b.WriteByte(';')
	}
	return b.String()
}

func formatArg(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// defaultShardCap bounds each shard's ring buffer. At roughly six spans
// per request this holds ~10k requests per shard; overflow drops the
// newest span and counts it, so a saturated trace is truncated, never
// reordered or silently wrong.
const defaultShardCap = 1 << 16

// Tracer collects spans from many goroutines. Each emitting goroutine
// asks for its own Shard once and appends locally; the Tracer merges
// shards into one canonical, deterministic order on query or export.
//
// The zero Tracer is not usable; call NewTracer.
type Tracer struct {
	mu       sync.Mutex
	procs    []string
	shards   []*Shard
	shardCap int
}

// NewTracer returns an empty tracer with the default per-shard
// capacity.
func NewTracer() *Tracer {
	return &Tracer{shardCap: defaultShardCap}
}

// RegisterProcess names a Perfetto process (a server, a fleet router)
// and returns its 1-based pid. Registration order is the pid order, so
// callers that construct processes deterministically get deterministic
// pids.
func (t *Tracer) RegisterProcess(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs = append(t.procs, name)
	return len(t.procs)
}

// NewShard returns a fresh span buffer owned by one emitting goroutine
// (or one low-rate shared emitter). Shards are never removed; Close is
// not needed.
func (t *Tracer) NewShard() *Shard {
	t.mu.Lock()
	defer t.mu.Unlock()
	sh := &Shard{cap: t.shardCap}
	t.shards = append(t.shards, sh)
	return sh
}

// Shard is a bounded span buffer with its own lock. The lock is
// uncontended when a single goroutine owns the shard, which is the
// serving stack's arrangement (one shard per worker, one for the
// scheduler, one for compiles).
type Shard struct {
	mu      sync.Mutex
	cap     int
	spans   []Span
	seq     uint64
	dropped int64
}

// Emit records one span. When the shard is full the span is dropped
// and counted; see Tracer.Dropped.
func (sh *Shard) Emit(sp Span) {
	if sh == nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.spans) >= sh.cap {
		sh.dropped++
		return
	}
	sh.seq++
	sp.seq = sh.seq
	sh.spans = append(sh.spans, sp)
}

// Dropped reports how many spans were discarded because a shard's ring
// filled up.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	shards := append([]*Shard(nil), t.shards...)
	t.mu.Unlock()
	var n int64
	for _, sh := range shards {
		sh.mu.Lock()
		n += sh.dropped
		sh.mu.Unlock()
	}
	return n
}

// Len reports the number of collected spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	shards := append([]*Shard(nil), t.shards...)
	t.mu.Unlock()
	n := 0
	for _, sh := range shards {
		sh.mu.Lock()
		n += len(sh.spans)
		sh.mu.Unlock()
	}
	return n
}

// Spans returns every collected span in canonical order: by start
// time, then process, track, request, name, duration, and rendered
// args. The order depends only on span *content*, so any schedule that
// produces the same spans produces the same sequence (and therefore
// the same exported bytes).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	shards := append([]*Shard(nil), t.shards...)
	t.mu.Unlock()
	var out []Span
	for _, sh := range shards {
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Req != b.Req {
			return a.Req < b.Req
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		as, bs := a.argString(), b.argString()
		if as != bs {
			return as < bs
		}
		return a.seq < b.seq
	})
	return out
}

// ByKind returns the spans with the given name, in canonical order.
func (t *Tracer) ByKind(name string) []Span {
	var out []Span
	for _, sp := range t.Spans() {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// ByRequest returns the spans of one request on one process, in
// canonical order. The KindRequest span is the root; the others are
// its children.
func (t *Tracer) ByRequest(proc int, req int64) []Span {
	var out []Span
	for _, sp := range t.Spans() {
		if sp.Proc == proc && sp.Req == req {
			out = append(out, sp)
		}
	}
	return out
}

// Processes returns the registered process names indexed by pid-1.
func (t *Tracer) Processes() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.procs...)
}
