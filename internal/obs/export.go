package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one entry of the Chrome trace-event format's
// "traceEvents" array (the JSON Object Format that Perfetto and
// chrome://tracing accept). Field order here fixes the key order of
// the exported bytes; args maps are sorted by encoding/json.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON exports every collected span as Chrome trace-event JSON.
// Spans become "X" (complete) events with ts/dur in microseconds of
// simulated time; process and track names become "M" metadata events.
// The output is canonical: same spans, same bytes, regardless of how
// goroutines interleaved while recording.
//
// Compile spans carry a modeled tuning duration but no meaningful
// start (tuning happens off the serving clock), so each compile track
// is laid out sequentially — span k starts where span k-1 ended —
// which renders as a packed tuning timeline in Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	procs := t.Processes()

	// Assign tids per (proc, track) in first-appearance order over the
	// canonical span sequence; tid 0 is reserved so Perfetto doesn't
	// merge a track with the process summary row.
	type key struct {
		proc  int
		track string
	}
	tids := make(map[key]int)
	order := make([]key, 0, 8)
	for i := range spans {
		k := key{spans[i].Proc, spans[i].Track}
		if _, ok := tids[k]; !ok {
			tids[k] = len(order) + 1
			order = append(order, k)
		}
	}

	events := make([]traceEvent, 0, len(spans)+len(procs)+len(order))
	for pid := 1; pid <= len(procs); pid++ {
		events = append(events, traceEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]any{"name": procs[pid-1]},
		})
	}
	for _, k := range order {
		events = append(events, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  k.proc,
			TID:  tids[k],
			Args: map[string]any{"name": k.track},
		})
	}

	// Sequential layout offsets for compile tracks.
	offsets := make(map[key]float64)
	for i := range spans {
		sp := &spans[i]
		k := key{sp.Proc, sp.Track}
		ts := sp.Start
		if sp.Cat == CatCompile {
			ts = offsets[k]
			offsets[k] += sp.Dur
		}
		dur := sp.Dur * 1e6
		ev := traceEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   ts * 1e6,
			Dur:  &dur,
			PID:  sp.Proc,
			TID:  tids[k],
		}
		if len(sp.Args) > 0 || sp.Req != 0 {
			args := make(map[string]any, len(sp.Args)+1)
			if sp.Req != 0 {
				args["req"] = sp.Req
			}
			for _, a := range sp.Args {
				args[a.Key] = a.Val
			}
			ev.Args = args
		}
		events = append(events, ev)
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// ExportJSON is WriteJSON into a byte slice.
func (t *Tracer) ExportJSON() []byte {
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		// bytes.Buffer never errors; json.Marshal of traceEvent cannot
		// fail for the value types Emit accepts.
		panic(fmt.Sprintf("obs: export: %v", err))
	}
	return buf.Bytes()
}
