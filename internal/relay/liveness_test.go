package relay

import (
	"fmt"
	"math/rand"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func TestNewIDNeverCollides(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 4, 8)
	w := b.Weight("w", 8, 8)
	g := b.Build(b.Dense(x, w))

	seen := map[int]bool{}
	for _, n := range g.Nodes {
		seen[n.ID] = true
	}
	// IDs handed out back-to-back (before any splice) must be unique
	// against the graph and against each other — the failure mode of
	// the old len(Nodes)*2 scheme.
	for i := 0; i < 10; i++ {
		id := g.NewID()
		if seen[id] {
			t.Fatalf("NewID reissued %d", id)
		}
		seen[id] = true
	}
}

func TestFoldBatchNormCreatesUniqueIDs(t *testing.T) {
	// Build a conv+BN chain, fold, and verify every node ID is unique
	// (Validate checks this, but assert directly for clarity).
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 1, 4, 8, 8)
	w := b.Weight("w", 8, 3, 3, 4)
	c := b.Conv2D(x, w, 1, 1)
	ga := b.Constant("ga", tensor.FromData(tensor.FP32, []float32{1, 1, 1, 1, 1, 1, 1, 1}, 8))
	be := b.Constant("be", tensor.FromData(tensor.FP32, make([]float32, 8), 8))
	me := b.Constant("me", tensor.FromData(tensor.FP32, make([]float32, 8), 8))
	va := b.Constant("va", tensor.FromData(tensor.FP32, []float32{1, 1, 1, 1, 1, 1, 1, 1}, 8))
	g := b.Build(b.BatchNorm(c, ga, be, me, va, 1e-5))

	if FoldBatchNorm(g) != 1 {
		t.Fatal("BN not folded")
	}
	ids := map[int]bool{}
	for _, n := range g.Nodes {
		if ids[n.ID] {
			t.Fatalf("duplicate node ID %d after folding", n.ID)
		}
		ids[n.ID] = true
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessIntervals(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 4, 8)
	w1 := b.Weight("w1", 8, 8)
	d1 := b.Dense(x, w1)
	a1 := b.Activation(d1, cutlass.ActReLU)
	g := b.Build(a1)

	live := Liveness(g)
	pos := map[int]int{}
	for i, n := range g.Nodes {
		pos[n.ID] = i
	}
	// d1 is defined at its position and last used by a1.
	if iv := live[d1.ID]; iv.Def != pos[d1.ID] || iv.LastUse != pos[a1.ID] {
		t.Errorf("d1 interval %+v, want def %d last %d", iv, pos[d1.ID], pos[a1.ID])
	}
	// The output outlives the node list (the caller reads it).
	if iv := live[a1.ID]; iv.LastUse != len(g.Nodes) {
		t.Errorf("output last use %d, want %d", iv.LastUse, len(g.Nodes))
	}
}

// checkPlanInvariants asserts the memory-safety contract of a plan:
// every intermediate has a buffer large enough for it, and no two
// simultaneously-live nodes share one (in-place aliasing is only legal
// when the aliased operand dies exactly at the op that takes over its
// buffer).
func checkPlanInvariants(t *testing.T, g *Graph, p *MemoryPlan) {
	t.Helper()
	byID := map[int]*Node{}
	for _, n := range g.Nodes {
		byID[n.ID] = n
	}
	for _, n := range g.Nodes {
		if n.Op == OpInput || n.Op == OpConstant {
			if _, ok := p.Assign[n.ID]; ok {
				t.Errorf("%s: inputs/constants must not be arena-planned", n)
			}
			continue
		}
		bi, ok := p.Assign[n.ID]
		if !ok {
			t.Errorf("%s: intermediate not planned", n)
			continue
		}
		if p.Buffers[bi].Elems < n.Shape.NumElements() {
			t.Errorf("%s: buffer %d holds %d elems, need %d", n, bi, p.Buffers[bi].Elems, n.Shape.NumElements())
		}
		if p.Buffers[bi].Bytes < n.Shape.NumElements()*n.DType.Size() {
			t.Errorf("%s: buffer %d holds %d bytes, need %d", n, bi, p.Buffers[bi].Bytes, n.Shape.NumElements()*n.DType.Size())
		}
	}
	// Pairwise: overlapping live ranges must not share a buffer.
	ids := make([]int, 0, len(p.Assign))
	for id := range p.Assign {
		ids = append(ids, id)
	}
	for _, a := range ids {
		for _, b := range ids {
			if a >= b || p.Assign[a] != p.Assign[b] {
				continue
			}
			ia, ib := p.Live[a], p.Live[b]
			if !ia.Overlaps(ib) {
				continue
			}
			// The only sanctioned overlap: the later node computes in
			// place over the earlier one, which dies at that position.
			first, second := a, b
			if p.Live[second].Def < p.Live[first].Def {
				first, second = second, first
			}
			n := byID[second]
			if !p.InPlace[second] || len(n.Inputs) == 0 || n.Inputs[0].ID != first ||
				p.Live[first].LastUse != p.Live[second].Def {
				t.Errorf("nodes %d and %d share buffer %d with overlapping live ranges %+v / %+v",
					a, b, p.Assign[a], ia, ib)
			}
		}
	}
	if p.ArenaBytes() > p.NaiveBytes {
		t.Errorf("planned arena %d exceeds naive sum %d", p.ArenaBytes(), p.NaiveBytes)
	}
}

// randomGraph builds a random single-input CNN-ish DAG with residual
// adds, mixed op kinds, and occasional shape changes.
func randomGraph(rng *rand.Rand) *Graph {
	b := NewBuilder()
	c := 8 * (1 + rng.Intn(3))
	size := 8 << rng.Intn(2)
	x := b.Input("data", tensor.FP16, 1+rng.Intn(2), c, size, size)
	// Track candidate residual sources by channel count.
	prev := x
	var residual *Node
	layers := 3 + rng.Intn(8)
	for i := 0; i < layers; i++ {
		switch rng.Intn(5) {
		case 0:
			oc := 8 * (1 + rng.Intn(3))
			w := b.Weight(fmt.Sprintf("w%d", i), oc, 3, 3, prev.Shape[1])
			prev = b.Conv2D(prev, w, 1, 1)
			residual = nil
		case 1:
			prev = b.Activation(prev, cutlass.ActReLU)
		case 2:
			prev = b.BiasAdd(prev, b.Weight(fmt.Sprintf("b%d", i), prev.Shape[1]))
		case 3:
			if residual != nil && residual.Shape.Equal(prev.Shape) {
				prev = b.Add(prev, residual)
				residual = nil
			} else {
				residual = prev
				prev = b.Activation(prev, cutlass.ActReLU)
			}
		case 4:
			ga, be, me, va := bnConsts(b, fmt.Sprintf("bn%d", i), prev.Shape[1])
			prev = b.BatchNorm(prev, ga, be, me, va, 1e-5)
		}
	}
	prev = b.GlobalAvgPool(prev)
	prev = b.Dense(prev, b.Weight("fc", prev.Shape[1], 10))
	return b.Build(b.Softmax(prev))
}

func bnConsts(b *Builder, name string, c int) (ga, be, me, va *Node) {
	ones := make([]float32, c)
	for i := range ones {
		ones[i] = 1
	}
	ga = b.Constant(name+"_g", tensor.FromData(tensor.FP32, append([]float32{}, ones...), c))
	be = b.Constant(name+"_b", tensor.FromData(tensor.FP32, make([]float32, c), c))
	me = b.Constant(name+"_m", tensor.FromData(tensor.FP32, make([]float32, c), c))
	va = b.Constant(name+"_v", tensor.FromData(tensor.FP32, append([]float32{}, ones...), c))
	return
}

// TestPlanMemoryPropertyRandomGraphs is the planner's safety property
// test: across many random graphs — raw and fully optimized — no two
// simultaneously-live nodes may ever share an arena buffer.
func TestPlanMemoryPropertyRandomGraphs(t *testing.T) {
	dev := gpu.T4()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g := randomGraph(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random graph: %v", trial, err)
		}
		checkPlanInvariants(t, g, PlanMemory(g))
		if trial%2 == 0 {
			if err := Optimize(g, dev); err != nil {
				t.Fatalf("trial %d: optimize: %v", trial, err)
			}
			checkPlanInvariants(t, g, PlanMemory(g))
		}
	}
}

func TestPlanMemoryReusesBuffers(t *testing.T) {
	// A straight elementwise chain must collapse to a tiny arena: each
	// value dies as the next is produced.
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 4, 64)
	cur := x
	for i := 0; i < 10; i++ {
		cur = b.Activation(cur, cutlass.ActReLU)
	}
	g := b.Build(cur)
	p := PlanMemory(g)
	if n := len(p.Buffers); n > 2 {
		t.Errorf("chain of 10 activations needs %d buffers, want <= 2 (in-place reuse)", n)
	}
	if p.ArenaBytes() >= p.NaiveBytes {
		t.Errorf("no reuse: arena %d, naive %d", p.ArenaBytes(), p.NaiveBytes)
	}
	if p.ReuseFactor() <= 1 {
		t.Errorf("reuse factor %.2f, want > 1", p.ReuseFactor())
	}
}
