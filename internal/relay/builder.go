package relay

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/tensor"
)

// Builder constructs relay graphs with shape inference at build time,
// mirroring how the TVM frontend parses a framework model into Relay
// (paper Figure 3, first stage).
type Builder struct {
	nodes  []*Node
	inputs []*Node
	nextID int
	seed   int64

	// LazyWeights skips random initialization for parameters larger
	// than 1 Mi elements. Model-zoo graphs that are only priced (never
	// executed functionally) set this to avoid hundreds of megabytes of
	// RNG fill.
	LazyWeights bool
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{seed: 1} }

func (b *Builder) add(n *Node) *Node {
	n.ID = b.nextID
	b.nextID++
	b.nodes = append(b.nodes, n)
	return n
}

// Input declares a graph input of the given dtype and shape. 4-D inputs
// default to NCHW (the PyTorch convention the paper's layout pass must
// transform).
func (b *Builder) Input(name string, dt tensor.DType, shape ...int) *Node {
	layout := tensor.LayoutRowMajor
	if len(shape) == 4 {
		layout = tensor.LayoutNCHW
	}
	n := b.add(&Node{Op: OpInput, Name: name, Shape: tensor.Shape(shape).Clone(), DType: dt, Layout: layout})
	b.inputs = append(b.inputs, n)
	return n
}

// Constant embeds a parameter tensor.
func (b *Builder) Constant(name string, v *tensor.Tensor) *Node {
	return b.add(&Node{Op: OpConstant, Name: name, Shape: v.Shape().Clone(), DType: v.DType(), Layout: v.Layout(), Value: v})
}

// Weight creates a deterministic pseudo-random FP16 parameter, for
// building models without trained checkpoints.
func (b *Builder) Weight(name string, shape ...int) *Node {
	t := tensor.New(tensor.FP16, shape...)
	if !b.LazyWeights || t.NumElements() <= 1<<20 {
		t.FillRandom(b.seed, 0.1)
	}
	b.seed++
	return b.Constant(name, t)
}

// Dense adds X·W with X (M×K) and W (K×N).
func (b *Builder) Dense(x, w *Node) *Node {
	xs, ws := x.Shape, w.Shape
	if len(xs) != 2 || len(ws) != 2 {
		panic(fmt.Sprintf("relay: dense needs 2-D operands, got %v x %v", xs, ws))
	}
	if xs[1] != ws[0] {
		panic(fmt.Sprintf("relay: dense K mismatch %v x %v", xs, ws))
	}
	return b.add(&Node{Op: OpDense, Inputs: []*Node{x, w}, Units: ws[1],
		Shape: tensor.Shape{xs[0], ws[1]}, DType: x.DType, Layout: tensor.LayoutRowMajor})
}

// Conv2D adds a convolution. x must be 4-D; w must be OHWI
// (OC, KH, KW, IC). Geometry attributes come from shape.
func (b *Builder) Conv2D(x, w *Node, stride, pad int) *Node {
	xs, ws := x.Shape, w.Shape
	if len(xs) != 4 || len(ws) != 4 {
		panic(fmt.Sprintf("relay: conv2d needs 4-D operands, got %v x %v", xs, ws))
	}
	var n, h, wd, c int
	switch x.Layout {
	case tensor.LayoutNCHW:
		n, c, h, wd = xs[0], xs[1], xs[2], xs[3]
	case tensor.LayoutNHWC:
		n, h, wd, c = xs[0], xs[1], xs[2], xs[3]
	default:
		panic(fmt.Sprintf("relay: conv2d input layout %v unsupported", x.Layout))
	}
	oc, kh, kw, ic := ws[0], ws[1], ws[2], ws[3]
	if ic != c {
		panic(fmt.Sprintf("relay: conv2d channel mismatch: input %d, weight IC %d", c, ic))
	}
	shape := cutlass.ConvShape{N: n, H: h, W: wd, IC: ic, OC: oc, KH: kh, KW: kw,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	var out tensor.Shape
	if x.Layout == tensor.LayoutNCHW {
		out = tensor.Shape{n, oc, shape.OutH(), shape.OutW()}
	} else {
		out = tensor.Shape{n, shape.OutH(), shape.OutW(), oc}
	}
	return b.add(&Node{Op: OpConv2D, Inputs: []*Node{x, w}, Conv: shape,
		Shape: out, DType: x.DType, Layout: x.Layout})
}

// BiasAdd broadcasts bias over the channel (4-D) or feature (2-D) axis.
func (b *Builder) BiasAdd(x, bias *Node) *Node {
	want := x.Shape[len(x.Shape)-1]
	if len(x.Shape) == 4 && x.Layout == tensor.LayoutNCHW {
		want = x.Shape[1]
	}
	if bias.Shape.NumElements() != want {
		panic(fmt.Sprintf("relay: bias length %d != channel dim %d", bias.Shape.NumElements(), want))
	}
	return b.add(&Node{Op: OpBiasAdd, Inputs: []*Node{x, bias},
		Shape: x.Shape.Clone(), DType: x.DType, Layout: x.Layout})
}

// Activation applies an elementwise nonlinearity.
func (b *Builder) Activation(x *Node, act cutlass.Activation) *Node {
	return b.add(&Node{Op: OpActivation, Inputs: []*Node{x}, Act: act,
		Shape: x.Shape.Clone(), DType: x.DType, Layout: x.Layout})
}

// Add is elementwise addition of same-shaped tensors.
func (b *Builder) Add(x, y *Node) *Node {
	if !x.Shape.Equal(y.Shape) {
		panic(fmt.Sprintf("relay: add shape mismatch %v vs %v", x.Shape, y.Shape))
	}
	return b.add(&Node{Op: OpAdd, Inputs: []*Node{x, y},
		Shape: x.Shape.Clone(), DType: x.DType, Layout: x.Layout})
}

// BatchNorm adds inference-mode batch normalization with the four
// per-channel parameter vectors.
func (b *Builder) BatchNorm(x, gamma, beta, mean, variance *Node, eps float64) *Node {
	return b.add(&Node{Op: OpBatchNorm, Inputs: []*Node{x, gamma, beta, mean, variance}, Eps: eps,
		Shape: x.Shape.Clone(), DType: x.DType, Layout: x.Layout})
}

// MaxPool adds 2-D max pooling.
func (b *Builder) MaxPool(x *Node, kernel, stride, pad int) *Node {
	xs := x.Shape
	pool := PoolAttrs{Kernel: kernel, Stride: stride, Pad: pad}
	outDim := func(in int) int { return (in+2*pad-kernel)/stride + 1 }
	var out tensor.Shape
	if x.Layout == tensor.LayoutNCHW {
		out = tensor.Shape{xs[0], xs[1], outDim(xs[2]), outDim(xs[3])}
	} else {
		out = tensor.Shape{xs[0], outDim(xs[1]), outDim(xs[2]), xs[3]}
	}
	return b.add(&Node{Op: OpMaxPool, Inputs: []*Node{x}, Pool: pool,
		Shape: out, DType: x.DType, Layout: x.Layout})
}

// GlobalAvgPool reduces the spatial dimensions to 1x1 and flattens to
// (N, C).
func (b *Builder) GlobalAvgPool(x *Node) *Node {
	xs := x.Shape
	var c int
	if x.Layout == tensor.LayoutNCHW {
		c = xs[1]
	} else {
		c = xs[3]
	}
	return b.add(&Node{Op: OpGlobalAvgPool, Inputs: []*Node{x},
		Shape: tensor.Shape{xs[0], c}, DType: x.DType, Layout: tensor.LayoutRowMajor})
}

// Flatten collapses non-batch dims.
func (b *Builder) Flatten(x *Node) *Node {
	n := x.Shape[0]
	rest := x.Shape.NumElements() / n
	return b.add(&Node{Op: OpFlatten, Inputs: []*Node{x},
		Shape: tensor.Shape{n, rest}, DType: x.DType, Layout: tensor.LayoutRowMajor})
}

// Softmax applies a row softmax over the last dimension.
func (b *Builder) Softmax(x *Node) *Node {
	return b.add(&Node{Op: OpSoftmax, Inputs: []*Node{x},
		Shape: x.Shape.Clone(), DType: x.DType, Layout: x.Layout})
}

// Build finalizes the graph with the given output node.
func (b *Builder) Build(output *Node) *Graph {
	g := &Graph{Nodes: b.nodes, Inputs: b.inputs, Output: output}
	g.rebuild()
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
