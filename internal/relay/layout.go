package relay

import (
	"fmt"

	"bolt/internal/tensor"
)

// TransformLayout rewrites a graph authored in NCHW (the PyTorch
// convention) into NHWC, the only layout the templated convolution
// kernels support (paper §3.2.3). A layout-transform op is inserted
// after each 4-D input and, if needed, before a 4-D output; both are
// marked Folded because Bolt implements them inside the adjacent
// kernel's generated CUDA rather than as separate launches, with the
// destination tensor pre-allocated in the model's parameters.
func TransformLayout(g *Graph) error {
	// Permute every 4-D NCHW intermediate to NHWC.
	for _, n := range g.Nodes {
		if n.Op == OpInput || n.Op == OpConstant {
			continue
		}
		if len(n.Shape) == 4 && n.Layout == tensor.LayoutNCHW {
			n.Shape = tensor.Shape{n.Shape[0], n.Shape[2], n.Shape[3], n.Shape[1]}
			n.Layout = tensor.LayoutNHWC
		}
	}
	// Insert input transforms (skipping inputs already fed through one,
	// so the pass is idempotent).
	id := g.NewID()
	consumers := g.Consumers()
	for _, in := range g.Inputs {
		if len(in.Shape) != 4 || in.Layout != tensor.LayoutNCHW {
			continue
		}
		already := false
		for _, c := range consumers[in.ID] {
			if c.Op == OpLayoutTransform {
				already = true
			}
		}
		if already {
			continue
		}
		tr := &Node{ID: id, Op: OpLayoutTransform, Inputs: []*Node{in},
			Shape: tensor.Shape{in.Shape[0], in.Shape[2], in.Shape[3], in.Shape[1]},
			DType: in.DType, Layout: tensor.LayoutNHWC, ToLayout: tensor.LayoutNHWC,
			Folded: true, Name: "layout_in"}
		id++
		// Rewire all consumers of the input except the transform itself.
		for _, n := range g.Nodes {
			if n == tr {
				continue
			}
			for i, x := range n.Inputs {
				if x == in {
					n.Inputs[i] = tr
				}
			}
		}
		g.insertAfter(in, tr)
		if g.Output == in {
			g.Output = tr
		}
	}
	// If the output is a 4-D NHWC tensor, transform back to NCHW so the
	// caller sees the layout the model was authored in.
	out := g.Output
	if len(out.Shape) == 4 && out.Layout == tensor.LayoutNHWC {
		tr := &Node{ID: g.NewID(), Op: OpLayoutTransform, Inputs: []*Node{out},
			Shape: tensor.Shape{out.Shape[0], out.Shape[3], out.Shape[1], out.Shape[2]},
			DType: out.DType, Layout: tensor.LayoutNCHW, ToLayout: tensor.LayoutNCHW,
			Folded: true, Name: "layout_out"}
		g.insertAfter(out, tr)
		g.Output = tr
	}
	g.rebuild()
	return g.Validate()
}

// padLastDim zero-pads the innermost dimension of a 4-D tensor to
// newC, regardless of its layout tag (used for OHWI weights and NHWC
// activations alike).
func padLastDim(t *tensor.Tensor, newC int) *tensor.Tensor {
	s := t.Shape()
	if len(s) != 4 {
		panic(fmt.Sprintf("relay: padLastDim needs 4-D tensor, got %v", s))
	}
	c := s[3]
	out := tensor.NewWithLayout(t.DType(), t.Layout(), s[0], s[1], s[2], newC)
	rows := s[0] * s[1] * s[2]
	for r := 0; r < rows; r++ {
		copy(out.Data()[r*newC:r*newC+c], t.Data()[r*c:(r+1)*c])
	}
	return out
}

// padOuterDim zero-pads the outermost dimension (OC for OHWI weights).
func padOuterDim(t *tensor.Tensor, newO int) *tensor.Tensor {
	s := t.Shape()
	out := tensor.NewWithLayout(t.DType(), t.Layout(), newO, s[1], s[2], s[3])
	copy(out.Data(), t.Data())
	return out
}

func roundUp8(x int) int { return (x + 7) / 8 * 8 }

// PadChannels implements Bolt's automated kernel padding (paper
// §3.2.3): convolutions whose input channels are not divisible by 8
// cannot use 128-bit vectorized access, so the activation is padded to
// the next multiple of 8 (a Folded=false pad kernel, whose cost Table 3
// quantifies) and the weights are padded at compile time (free). When
// output channels are unaligned, the weights are padded along OC and a
// folded slice restores the logical shape. Requires NHWC (run after
// TransformLayout). Returns the number of convolutions padded.
func PadChannels(g *Graph) int {
	padded := 0
	for _, n := range append([]*Node{}, g.Nodes...) {
		if n.Op != OpConv2D || n.Layout != tensor.LayoutNHWC {
			continue
		}
		w := n.Inputs[1]
		if w.Op != OpConstant {
			continue
		}
		changed := false
		if ic := n.Conv.IC; ic%8 != 0 && ic > 3 {
			// First-layer IC=3 convs keep a narrow-alignment kernel: the
			// paper pads production workloads (IC 46, 174, ...) where
			// the win outweighs the pad cost; padding 3->8 nearly
			// triples the input volume.
			newIC := roundUp8(ic)
			// Pad weights along IC at compile time.
			wNew := padLastDim(w.Value, newIC)
			wc := &Node{ID: g.NewID(), Op: OpConstant, Name: w.Name + "_padic",
				Shape: wNew.Shape().Clone(), DType: wNew.DType(), Layout: wNew.Layout(), Value: wNew}
			g.insertAfter(w, wc)
			n.Inputs[1] = wc
			// Pad the activation with an explicit kernel. The padded
			// buffer is pre-allocated in the model parameters, but the
			// copy itself still costs time (Table 3's "Cost" column).
			x := n.Inputs[0]
			xs := x.Shape
			pad := &Node{ID: g.NewID(), Op: OpPadChannels, Inputs: []*Node{x}, PadTo: newIC,
				Shape: tensor.Shape{xs[0], xs[1], xs[2], newIC}, DType: x.DType,
				Layout: tensor.LayoutNHWC, Name: "pad_ic"}
			g.insertAfter(x, pad)
			n.Inputs[0] = pad
			n.Conv.IC = newIC
			changed = true
		}
		if oc := n.Conv.OC; oc%8 != 0 {
			newOC := roundUp8(oc)
			wNew := padOuterDim(n.Inputs[1].ValueOrPanic(), newOC)
			wc := &Node{ID: g.NewID(), Op: OpConstant, Name: w.Name + "_padoc",
				Shape: wNew.Shape().Clone(), DType: wNew.DType(), Layout: wNew.Layout(), Value: wNew}
			g.insertAfter(n.Inputs[1], wc)
			n.Inputs[1] = wc
			// Bias (fused epilogue) must be padded too.
			if len(n.Inputs) > 2 && n.Inputs[2].Op == OpConstant {
				old := n.Inputs[2].Value
				nb := tensor.New(old.DType(), newOC)
				copy(nb.Data(), old.Data())
				bc := &Node{ID: g.NewID(), Op: OpConstant, Name: "bias_padoc",
					Shape: nb.Shape().Clone(), DType: nb.DType(), Layout: nb.Layout(), Value: nb}
				g.insertAfter(n.Inputs[2], bc)
				n.Inputs[2] = bc
			}
			oldShape := n.Shape.Clone()
			n.Conv.OC = newOC
			n.Shape = tensor.Shape{oldShape[0], oldShape[1], oldShape[2], newOC}
			// Folded slice restores the logical channel count for
			// downstream consumers.
			sl := &Node{ID: g.NewID(), Op: OpSliceChannels, Inputs: []*Node{n}, PadTo: oc,
				Shape: oldShape, DType: n.DType, Layout: tensor.LayoutNHWC,
				Folded: true, Name: "slice_oc"}
			g.insertAfter(n, sl)
			// Rewire consumers of n (except sl) to sl.
			for _, m := range g.Nodes {
				if m == sl {
					continue
				}
				for i, x := range m.Inputs {
					if x == n {
						m.Inputs[i] = sl
					}
				}
			}
			if g.Output == n {
				g.Output = sl
			}
			changed = true
		}
		if changed {
			padded++
		}
	}
	g.rebuild()
	return padded
}

// ValueOrPanic returns the constant tensor or panics.
func (n *Node) ValueOrPanic() *tensor.Tensor {
	if n.Value == nil {
		panic(fmt.Sprintf("relay: node %s has no constant value", n))
	}
	return n.Value
}
