package relay

import (
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

func TestBuilderShapeInference(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 3, 224, 224)
	if x.Layout != tensor.LayoutNCHW {
		t.Error("4-D input should default to NCHW")
	}
	w := b.Weight("w0", 64, 7, 7, 3)
	c := b.Conv2D(x, w, 2, 3)
	if !c.Shape.Equal(tensor.Shape{32, 64, 112, 112}) {
		t.Errorf("conv output shape %v", c.Shape)
	}
	p := b.MaxPool(c, 3, 2, 1)
	if !p.Shape.Equal(tensor.Shape{32, 64, 56, 56}) {
		t.Errorf("pool output shape %v", p.Shape)
	}
	gap := b.GlobalAvgPool(p)
	if !gap.Shape.Equal(tensor.Shape{32, 64}) {
		t.Errorf("gap shape %v", gap.Shape)
	}
	fc := b.Dense(gap, b.Weight("wfc", 64, 1000))
	if !fc.Shape.Equal(tensor.Shape{32, 1000}) {
		t.Errorf("dense shape %v", fc.Shape)
	}
	sm := b.Softmax(fc)
	g := b.Build(sm)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Output != sm || len(g.Inputs) != 1 {
		t.Error("graph wiring wrong")
	}
}

func TestBuilderPanicsOnMismatch(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 8, 16)
	expectPanic("dense K mismatch", func() { b.Dense(x, b.Weight("w", 8, 4)) })
	x4 := b.Input("x4", tensor.FP16, 1, 3, 8, 8)
	expectPanic("conv channel mismatch", func() { b.Conv2D(x4, b.Weight("w", 8, 3, 3, 5), 1, 1) })
	expectPanic("bias length", func() { b.BiasAdd(x, b.Weight("b", 7)) })
	y := b.Input("y", tensor.FP16, 8, 8)
	expectPanic("add shape", func() { b.Add(x, y) })
}

func TestDeadNodeElimination(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 4, 8)
	_ = b.Dense(x, b.Weight("dead", 8, 8)) // unused branch
	live := b.Dense(x, b.Weight("live", 8, 16))
	g := b.Build(live)
	for _, n := range g.Nodes {
		if n.Op == OpConstant && n.Name == "dead" {
			t.Error("dead constant not eliminated")
		}
	}
	if g.CountOp(OpDense) != 1 {
		t.Errorf("dead dense not eliminated: %d dense nodes", g.CountOp(OpDense))
	}
}

func TestFuseEpilogueBiasAct(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 64)
	d := b.Dense(x, b.Weight("w", 64, 128))
	d = b.BiasAdd(d, b.Weight("b", 128))
	d = b.Activation(d, cutlass.ActGELU)
	g := b.Build(d)

	n := FuseEpilogue(g)
	if n != 2 {
		t.Errorf("fused %d patterns, want 2 (bias + act)", n)
	}
	if g.CountOp(OpBiasAdd) != 0 || g.CountOp(OpActivation) != 0 {
		t.Error("bias/activation nodes should be absorbed")
	}
	dense := g.Output
	if dense.Op != OpDense {
		t.Fatalf("output is %v, want dense", dense.Op)
	}
	if dense.Epilogue == nil || !dense.Epilogue.BiasVector || dense.Epilogue.Act != cutlass.ActGELU {
		t.Errorf("epilogue not composed: %+v", dense.Epilogue)
	}
	if len(dense.Inputs) != 3 {
		t.Errorf("dense should now carry the bias input: %d inputs", len(dense.Inputs))
	}
}

func TestFuseEpilogueStopsAtFanout(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 64)
	d := b.Dense(x, b.Weight("w", 64, 64))
	a1 := b.Activation(d, cutlass.ActReLU)
	a2 := b.Activation(d, cutlass.ActSigmoid)
	g := b.Build(b.Add(a1, a2))
	if n := FuseEpilogue(g); n != 0 {
		t.Errorf("fused %d through a fan-out, want 0", n)
	}
}

func TestFuseEpilogueActOnly(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 1, 8, 8, 16)
	x.Layout = tensor.LayoutNHWC // pretend already NHWC
	c := b.Conv2D(x, b.Weight("w", 16, 3, 3, 16), 1, 1)
	g := b.Build(b.Activation(c, cutlass.ActHardswish))
	if n := FuseEpilogue(g); n != 1 {
		t.Errorf("fused %d, want 1", n)
	}
	if g.Output.Op != OpConv2D || g.Output.Epilogue.Act != cutlass.ActHardswish {
		t.Error("activation not fused into conv")
	}
	if g.Output.Epilogue.BiasVector {
		t.Error("no bias should be attached")
	}
}

func TestFoldBatchNorm(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 1, 2, 4, 4)
	w := b.Weight("w", 2, 1, 1, 2)
	c := b.Conv2D(x, w, 1, 0)
	gamma := b.Constant("gamma", tensor.FromData(tensor.FP32, []float32{2, 0.5}, 2))
	beta := b.Constant("beta", tensor.FromData(tensor.FP32, []float32{1, -1}, 2))
	mean := b.Constant("mean", tensor.FromData(tensor.FP32, []float32{0.5, 0.25}, 2))
	variance := b.Constant("var", tensor.FromData(tensor.FP32, []float32{4, 1}, 2))
	bn := b.BatchNorm(c, gamma, beta, mean, variance, 0)
	g := b.Build(bn)

	origW := w.Value.Clone()
	if n := FoldBatchNorm(g); n != 1 {
		t.Fatalf("folded %d BNs, want 1", n)
	}
	if g.CountOp(OpBatchNorm) != 0 {
		t.Error("BN node should be gone")
	}
	if g.Output.Op != OpBiasAdd {
		t.Fatalf("output is %v, want bias_add", g.Output.Op)
	}
	conv := g.Output.Inputs[0]
	wNew := conv.Inputs[1].Value
	// scale = gamma/sqrt(var) = [1, 0.5]; channel 0 weights unchanged,
	// channel 1 halved.
	per := wNew.NumElements() / 2
	for j := 0; j < per; j++ {
		want0 := origW.Data()[j] * 1
		want1 := origW.Data()[per+j] * 0.5
		if !close16(wNew.Data()[j], want0) || !close16(wNew.Data()[per+j], want1) {
			t.Fatalf("weights not folded correctly")
		}
	}
	// shift = beta - mean*scale = [1-0.5, -1-0.125] = [0.5, -1.125]
	bias := g.Output.Inputs[1].Value
	if !close16(bias.Data()[0], 0.5) || !close16(bias.Data()[1], -1.125) {
		t.Errorf("bias = %v, want [0.5, -1.125]", bias.Data())
	}
}

func close16(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 0.01
}

func TestFusePersistentDenseChain(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 16384, 256)
	h := b.Dense(x, b.Weight("w0", 256, 64))
	h = b.BiasAdd(h, b.Weight("b0", 64))
	h = b.Activation(h, cutlass.ActReLU)
	h = b.Dense(h, b.Weight("w1", 64, 16))
	h = b.BiasAdd(h, b.Weight("b1", 16))
	h = b.Activation(h, cutlass.ActReLU)
	g := b.Build(h)

	FuseEpilogue(g)
	if n := FusePersistent(g, d); n != 1 {
		t.Fatalf("created %d persistent chains, want 1", n)
	}
	if g.CountOp(OpDense) != 0 || g.CountOp(OpPersistentGemm) != 1 {
		t.Error("dense ops should be replaced by one persistent node")
	}
	p := g.Output
	if p.Op != OpPersistentGemm || len(p.Chain) != 2 {
		t.Fatalf("persistent node malformed: %v chain %d", p.Op, len(p.Chain))
	}
	if p.Chain[0].N != 64 || p.Chain[1].N != 16 || p.Chain[1].K != 64 {
		t.Errorf("chain dims wrong: %+v", p.Chain)
	}
	if p.Chain[0].Bias == nil || p.Chain[1].Bias == nil {
		t.Error("fused biases lost")
	}
	if !p.Shape.Equal(tensor.Shape{16384, 16}) {
		t.Errorf("persistent output shape %v", p.Shape)
	}
}

func TestFusePersistentRejectsLargeN(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	// N=3072: threadblock residence cannot hold (tile would not fit);
	// the pass must leave the GEMMs unfused.
	x := b.Input("x", tensor.FP16, 1280, 768)
	h := b.Dense(x, b.Weight("w0", 768, 3072))
	h = b.Activation(h, cutlass.ActReLU)
	h = b.Dense(h, b.Weight("w1", 3072, 768))
	g := b.Build(h)
	FuseEpilogue(g)
	if n := FusePersistent(g, d); n != 0 {
		t.Errorf("created %d chains for compute-bound large-N GEMMs, want 0", n)
	}
	if g.CountOp(OpDense) != 2 {
		t.Error("dense nodes should survive")
	}
}

func TestFusePersistentConvChain(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 48, 56, 56) // NCHW
	c1 := b.Conv2D(x, b.Weight("w0", 48, 3, 3, 48), 1, 1)
	c1 = b.BiasAdd(c1, b.Weight("b0", 48))
	c1 = b.Activation(c1, cutlass.ActReLU)
	c2 := b.Conv2D(c1, b.Weight("w1", 48, 1, 1, 48), 1, 0)
	c2 = b.BiasAdd(c2, b.Weight("b1", 48))
	c2 = b.Activation(c2, cutlass.ActReLU)
	g := b.Build(c2)

	FuseEpilogue(g)
	if err := TransformLayout(g); err != nil {
		t.Fatal(err)
	}
	if n := FusePersistent(g, d); n != 1 {
		t.Fatalf("created %d conv chains, want 1", n)
	}
	if g.CountOp(OpPersistentConv) != 1 || g.CountOp(OpConv2D) != 0 {
		t.Error("convs should be fused into one persistent node")
	}
}

func TestFusePersistentConvRejects3x3Follower(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 48, 56, 56)
	c1 := b.Conv2D(x, b.Weight("w0", 48, 3, 3, 48), 1, 1)
	c1 = b.Activation(c1, cutlass.ActReLU)
	c2 := b.Conv2D(c1, b.Weight("w1", 48, 3, 3, 48), 1, 1) // 3x3: violates residence
	g := b.Build(c2)
	FuseEpilogue(g)
	TransformLayout(g)
	if n := FusePersistent(g, d); n != 0 {
		t.Errorf("3x3 follower fused (%d chains), residence should forbid it", n)
	}
}

func TestTransformLayout(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 2, 3, 8, 8)
	c := b.Conv2D(x, b.Weight("w", 16, 3, 3, 3), 1, 1)
	g := b.Build(c)
	if err := TransformLayout(g); err != nil {
		t.Fatal(err)
	}
	// Input stays NCHW; a folded transform feeds the conv; conv output
	// is NHWC; a folded transform restores NCHW at the output.
	if x.Layout != tensor.LayoutNCHW {
		t.Error("input layout must not change")
	}
	if g.CountOp(OpLayoutTransform) != 2 {
		t.Errorf("%d layout transforms, want 2", g.CountOp(OpLayoutTransform))
	}
	if g.Output.Op != OpLayoutTransform || g.Output.Layout != tensor.LayoutNCHW {
		t.Error("output should be transformed back to NCHW")
	}
	var conv *Node
	for _, n := range g.Nodes {
		if n.Op == OpConv2D {
			conv = n
		}
	}
	if conv.Layout != tensor.LayoutNHWC || !conv.Shape.Equal(tensor.Shape{2, 8, 8, 16}) {
		t.Errorf("conv not converted: %v %v", conv.Layout, conv.Shape)
	}
	for _, n := range g.Nodes {
		if n.Op == OpLayoutTransform && !n.Folded {
			t.Error("layout transforms must be folded into adjacent kernels")
		}
	}
}

func TestPadChannels(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 32, 46, 20, 26) // IC=46: unaligned
	c := b.Conv2D(x, b.Weight("w", 32, 3, 3, 46), 1, 1)
	g := b.Build(c)
	TransformLayout(g)
	if n := PadChannels(g); n != 1 {
		t.Fatalf("padded %d convs, want 1", n)
	}
	if g.CountOp(OpPadChannels) != 1 {
		t.Error("pad op missing")
	}
	var conv *Node
	for _, n := range g.Nodes {
		if n.Op == OpConv2D {
			conv = n
		}
	}
	if conv.Conv.IC != 48 {
		t.Errorf("conv IC = %d, want 48", conv.Conv.IC)
	}
	if !conv.Inputs[1].Shape.Equal(tensor.Shape{32, 3, 3, 48}) {
		t.Errorf("weight not padded: %v", conv.Inputs[1].Shape)
	}
	// Padded weight values: original region preserved, pad region zero.
	w := conv.Inputs[1].Value
	if w.At(0, 0, 0, 47) != 0 {
		t.Error("weight pad region nonzero")
	}
}

func TestPadChannelsSkipsAlignedAndFirstLayer(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 1, 3, 8, 8) // IC=3: first layer, skip
	c := b.Conv2D(x, b.Weight("w", 64, 3, 3, 3), 1, 1)
	c2 := b.Conv2D(c, b.Weight("w2", 64, 3, 3, 64), 1, 1) // aligned
	g := b.Build(c2)
	TransformLayout(g)
	if n := PadChannels(g); n != 0 {
		t.Errorf("padded %d convs, want 0", n)
	}
}

func TestPadOutputChannels(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 4, 16, 10, 10)
	c := b.Conv2D(x, b.Weight("w", 30, 3, 3, 16), 1, 1) // OC=30 unaligned
	g := b.Build(c)
	TransformLayout(g)
	if n := PadChannels(g); n != 1 {
		t.Fatalf("padded %d convs, want 1", n)
	}
	if g.CountOp(OpSliceChannels) != 1 {
		t.Error("slice op missing after OC padding")
	}
	var conv *Node
	for _, n := range g.Nodes {
		if n.Op == OpConv2D {
			conv = n
		}
	}
	if conv.Conv.OC != 32 {
		t.Errorf("conv OC = %d, want 32", conv.Conv.OC)
	}
}

func TestPartitionBYOC(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 8, 3, 32, 32)
	c := b.Conv2D(x, b.Weight("w", 16, 3, 3, 3), 1, 1)
	c = b.BiasAdd(c, b.Weight("b", 16))
	c = b.Activation(c, cutlass.ActReLU)
	p := b.MaxPool(c, 2, 2, 0)
	f := b.Flatten(p)
	fc := b.Dense(f, b.Weight("wfc", 16*16*16, 10))
	sm := b.Softmax(fc)
	g := b.Build(sm)

	if err := Optimize(g, d); err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		switch n.Op {
		case OpConv2D, OpDense, OpPersistentConv, OpPersistentGemm, OpPadChannels, OpSliceChannels, OpLayoutTransform:
			if n.Target != TargetBolt {
				t.Errorf("%s should be on Bolt, got %v", n, n.Target)
			}
		case OpMaxPool, OpSoftmax, OpFlatten:
			if n.Target != TargetTVM {
				t.Errorf("%s should be on TVM, got %v", n, n.Target)
			}
		}
	}
}

func TestOptimizePipelineOnResNetBlock(t *testing.T) {
	d := gpu.T4()
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 8, 64, 56, 56)
	newBN := func(c int) (*Node, *Node, *Node, *Node) {
		ones := make([]float32, c)
		zeros := make([]float32, c)
		vr := make([]float32, c)
		for i := range ones {
			ones[i] = 1
			vr[i] = 1
		}
		return b.Constant("g", tensor.FromData(tensor.FP32, ones, c)),
			b.Constant("be", tensor.FromData(tensor.FP32, zeros, c)),
			b.Constant("m", tensor.FromData(tensor.FP32, append([]float32{}, zeros...), c)),
			b.Constant("v", tensor.FromData(tensor.FP32, vr, c))
	}
	c1 := b.Conv2D(x, b.Weight("w1", 64, 3, 3, 64), 1, 1)
	ga, be, me, va := newBN(64)
	c1 = b.BatchNorm(c1, ga, be, me, va, 1e-5)
	c1 = b.Activation(c1, cutlass.ActReLU)
	c2 := b.Conv2D(c1, b.Weight("w2", 64, 3, 3, 64), 1, 1)
	ga2, be2, me2, va2 := newBN(64)
	c2 = b.BatchNorm(c2, ga2, be2, me2, va2, 1e-5)
	sum := b.Add(c2, x)
	out := b.Activation(sum, cutlass.ActReLU)
	g := b.Build(out)

	if err := Optimize(g, d); err != nil {
		t.Fatal(err)
	}
	if g.CountOp(OpBatchNorm) != 0 {
		t.Error("BNs should be folded")
	}
	// Both convs keep bias epilogues; first one also gets the ReLU.
	for _, n := range g.Nodes {
		if n.Op == OpConv2D && n.Epilogue == nil {
			t.Errorf("conv %s missing fused epilogue", n)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
