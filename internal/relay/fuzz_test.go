package relay

import (
	"math/rand"
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// buildRandomCNN emits a random-but-valid conv stack: a fuzz harness
// for the pass pipeline. Every generated graph must survive Optimize
// with a valid topology and sane shapes.
func buildRandomCNN(rng *rand.Rand) *Graph {
	b := NewBuilder()
	channels := []int{3, 8, 16, 24, 32, 46, 48, 64}
	acts := []cutlass.Activation{cutlass.ActReLU, cutlass.ActGELU, cutlass.ActHardswish, cutlass.ActSoftplus, cutlass.ActIdentity}

	ic := channels[rng.Intn(len(channels))]
	size := 8 * (1 + rng.Intn(3))
	x := b.Input("data", tensor.FP16, 1+rng.Intn(4), ic, size, size)
	cur := x
	layers := 1 + rng.Intn(5)
	for i := 0; i < layers; i++ {
		oc := channels[1+rng.Intn(len(channels)-1)]
		kernel := []int{1, 3}[rng.Intn(2)]
		stride := 1
		pad := 0
		if kernel == 3 {
			pad = 1
			if rng.Intn(3) == 0 && cur.Shape[2] >= 8 {
				stride = 2
			}
		}
		w := b.Weight("w", oc, kernel, kernel, curChannels(cur))
		cur = b.Conv2D(cur, w, stride, pad)
		if rng.Intn(2) == 0 {
			cur = b.BiasAdd(cur, b.Weight("b", oc))
		}
		if act := acts[rng.Intn(len(acts))]; act != cutlass.ActIdentity {
			cur = b.Activation(cur, act)
		}
		if rng.Intn(4) == 0 && cur.Shape[2] >= 4 {
			cur = b.MaxPool(cur, 2, 2, 0)
		}
	}
	cur = b.GlobalAvgPool(cur)
	cur = b.Dense(cur, b.Weight("fc", cur.Shape[1], 1+rng.Intn(16)))
	return b.Build(b.Softmax(cur))
}

func curChannels(n *Node) int {
	if n.Layout == tensor.LayoutNHWC {
		return n.Shape[3]
	}
	return n.Shape[1]
}

// TestOptimizeFuzz runs the whole pass pipeline over many random
// graphs: no panics, valid topology, consistent shapes, complete
// partitioning.
func TestOptimizeFuzz(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		g := buildRandomCNN(rng)
		nodesBefore := len(g.Nodes)
		if err := Optimize(g, d); err != nil {
			t.Fatalf("iteration %d: Optimize failed: %v", i, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("iteration %d: invalid graph after passes: %v", i, err)
		}
		// Output must remain a (batch, classes) softmax.
		if len(g.Output.Shape) != 2 {
			t.Fatalf("iteration %d: output rank changed: %v", i, g.Output.Shape)
		}
		// Every non-constant, non-input node must have a target.
		for _, n := range g.Nodes {
			if n.Op == OpInput || n.Op == OpConstant {
				continue
			}
			if n.Target == TargetUnassigned {
				t.Fatalf("iteration %d: node %s unpartitioned", i, n)
			}
			// Convs must be NHWC with alignment-compatible channels
			// after padding.
			if n.Op == OpConv2D || n.Op == OpPersistentConv {
				if n.Layout != tensor.LayoutNHWC {
					t.Fatalf("iteration %d: conv %s not NHWC", i, n)
				}
			}
			if n.Op == OpConv2D && n.Conv.IC > 3 && n.Conv.IC%8 != 0 {
				t.Fatalf("iteration %d: conv %s left unpadded (IC=%d)", i, n, n.Conv.IC)
			}
		}
		_ = nodesBefore
	}
}

// TestOptimizeIdempotent checks that running the pipeline twice is
// harmless (passes must not re-fuse or re-pad already-processed
// graphs into invalid states).
func TestOptimizeIdempotent(t *testing.T) {
	d := gpu.T4()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		g := buildRandomCNN(rng)
		if err := Optimize(g, d); err != nil {
			t.Fatal(err)
		}
		once := len(g.Nodes)
		if err := Optimize(g, d); err != nil {
			t.Fatalf("second Optimize failed: %v", err)
		}
		if len(g.Nodes) != once {
			t.Fatalf("second Optimize changed node count %d -> %d", once, len(g.Nodes))
		}
	}
}

// TestEpilogueFusionPreservesSemantics: for random (conv, bias, act)
// triples, the fused epilogue must encode exactly the ops removed.
func TestEpilogueFusionPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	acts := []cutlass.Activation{cutlass.ActReLU, cutlass.ActGELU, cutlass.ActHardswish}
	for i := 0; i < 30; i++ {
		withBias := rng.Intn(2) == 0
		act := acts[rng.Intn(len(acts))]
		b := NewBuilder()
		x := b.Input("x", tensor.FP16, 1, 8, 8, 8)
		c := b.Conv2D(x, b.Weight("w", 8, 3, 3, 8), 1, 1)
		expect := 0
		if withBias {
			c = b.BiasAdd(c, b.Weight("b", 8))
			expect++
		}
		c = b.Activation(c, act)
		expect++
		g := b.Build(c)
		if got := FuseEpilogue(g); got != expect {
			t.Fatalf("iteration %d: fused %d, want %d", i, got, expect)
		}
		conv := g.Output
		if conv.Op != OpConv2D {
			t.Fatal("fusion did not terminate at the conv")
		}
		if conv.Epilogue.Act != act {
			t.Fatalf("activation lost: %v != %v", conv.Epilogue.Act, act)
		}
		if conv.Epilogue.BiasVector != withBias {
			t.Fatalf("bias flag wrong: %v != %v", conv.Epilogue.BiasVector, withBias)
		}
	}
}
