package relay

// This file implements the runtime's static memory planning: a graph
// liveness analysis plus a greedy best-fit assignment of every
// intermediate value to a reusable arena buffer. The plan is computed
// once at compile time; the executor then allocates the arena once and
// recycles it across kernels and across Run calls, so the serving hot
// path performs no per-op activation allocation (paper §3.2.3 measures
// exactly this activation footprint).

// Interval is a node's live range in topological positions: the value
// is materialized at position Def and must survive until position
// LastUse (inclusive). The graph output's LastUse extends past the end
// of the node list because the caller consumes it after execution.
type Interval struct {
	Def, LastUse int
}

// Overlaps reports whether two live ranges intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Def <= o.LastUse && o.Def <= iv.LastUse
}

// Liveness computes the live range of every node, keyed by node ID.
// Nodes the graph never consumes (dead inputs kept alive for callers)
// get a one-position range at their definition.
func Liveness(g *Graph) map[int]Interval {
	live := make(map[int]Interval, len(g.Nodes))
	for i, n := range g.Nodes {
		live[n.ID] = Interval{Def: i, LastUse: i}
	}
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			if iv, ok := live[in.ID]; ok && i > iv.LastUse {
				iv.LastUse = i
				live[in.ID] = iv
			}
		}
	}
	if g.Output != nil {
		if iv, ok := live[g.Output.ID]; ok {
			iv.LastUse = len(g.Nodes)
			live[g.Output.ID] = iv
		}
	}
	return live
}

// PlanBuffer is one reusable arena buffer: its device size in bytes
// (what a real allocator would reserve) and its host backing capacity
// in float32 elements (the functional executor stores every dtype as
// float32 words).
type PlanBuffer struct {
	Bytes int
	Elems int
}

// MemoryPlan assigns every intermediate value (every node that is not
// an input or a constant) to an arena buffer such that no two
// simultaneously-live values share one. Single-pass elementwise ops
// may be assigned their first operand's buffer when that operand dies
// at the op (InPlace); the executor's destination-writing kernels are
// index-aligned, so reading and writing the same buffer is safe.
type MemoryPlan struct {
	// Buffers is the arena layout, in allocation order.
	Buffers []PlanBuffer
	// Assign maps node ID -> index into Buffers. Inputs and constants
	// are absent: they live in caller- or model-owned storage.
	Assign map[int]int
	// InPlace marks nodes that compute in place over Inputs[0]'s buffer.
	InPlace map[int]bool
	// Live is the liveness analysis the plan was derived from.
	Live map[int]Interval
	// NaiveBytes is the sum of every intermediate tensor's size — what
	// a clone-per-op executor would allocate over one run.
	NaiveBytes int
}

// ArenaBytes is the total device footprint of the planned arena.
func (p *MemoryPlan) ArenaBytes() int {
	total := 0
	for _, b := range p.Buffers {
		total += b.Bytes
	}
	return total
}

// ReuseFactor is how many times over the arena is recycled: the naive
// sum of intermediates divided by the planned footprint (1.0 means no
// reuse was possible).
func (p *MemoryPlan) ReuseFactor() float64 {
	a := p.ArenaBytes()
	if a == 0 {
		return 1
	}
	return float64(p.NaiveBytes) / float64(a)
}

// inPlaceCapable reports whether the op's destination kernel is a
// single-pass, index-aligned elementwise transform of Inputs[0], so
// its output may alias that operand's buffer. Flatten qualifies too:
// it is a pure reinterpretation, and an aliased destination turns its
// copy into a no-op.
func inPlaceCapable(op OpKind) bool {
	switch op {
	case OpBiasAdd, OpActivation, OpAdd, OpBatchNorm, OpSoftmax, OpFlatten:
		return true
	}
	return false
}

// planned reports whether the node's value is arena-allocated (inputs
// are caller-owned, constants are model parameters).
func planned(n *Node) bool {
	return n.Op != OpInput && n.Op != OpConstant
}

// PlanMemory computes the static memory plan for a graph in its
// current (post-optimization) topological order.
//
// The assignment is greedy best-fit in one topological sweep: when a
// node defines its value, the smallest free buffer that fits is
// reused; with only smaller free buffers available the largest one is
// grown; with none, a new buffer is appended. Operand buffers are
// released after the defining node claims its destination, so a
// kernel's output never aliases its live operands — except for the
// sanctioned in-place elementwise case, where the output deliberately
// takes over the buffer of a first operand that dies at the op.
func PlanMemory(g *Graph) *MemoryPlan {
	live := Liveness(g)
	p := &MemoryPlan{
		Assign:  make(map[int]int),
		InPlace: make(map[int]bool),
		Live:    live,
	}
	// occupant[b] is the node ID currently holding buffer b, or -1.
	occupant := []int{}

	for i, n := range g.Nodes {
		if !planned(n) {
			continue
		}
		elems := n.Shape.NumElements()
		bytes := elems * n.DType.Size()
		p.NaiveBytes += bytes

		bi := -1
		if inPlaceCapable(n.Op) && len(n.Inputs) > 0 {
			x := n.Inputs[0]
			xb, ok := p.Assign[x.ID]
			if ok && live[x.ID].LastUse == i && occupant[xb] == x.ID &&
				x.Shape.NumElements() == elems && x.DType == n.DType {
				bi = xb
				p.InPlace[n.ID] = true
			}
		}
		if bi < 0 {
			bi = claimBuffer(p, occupant, bytes, elems)
			if bi == len(occupant) {
				occupant = append(occupant, -1)
			}
		}
		if elems > p.Buffers[bi].Elems {
			p.Buffers[bi].Elems = elems
		}
		p.Assign[n.ID] = bi
		occupant[bi] = n.ID

		// Release operands whose last use is this node.
		for _, in := range n.Inputs {
			if ib, ok := p.Assign[in.ID]; ok && live[in.ID].LastUse == i && occupant[ib] == in.ID {
				occupant[ib] = -1
			}
		}
		// A value nothing consumes (and that is not the output) frees
		// immediately.
		if live[n.ID].LastUse == i {
			occupant[bi] = -1
		}
	}
	return p
}

// claimBuffer finds a free buffer for a value of the given size:
// best-fit among free buffers that fit, else grow the largest free
// one, else append a new buffer. Returns the buffer index (equal to
// len(occupant) when a new buffer was appended).
func claimBuffer(p *MemoryPlan, occupant []int, bytes, elems int) int {
	best, largest := -1, -1
	for b, occ := range occupant {
		if occ != -1 {
			continue
		}
		if p.Buffers[b].Bytes >= bytes && (best == -1 || p.Buffers[b].Bytes < p.Buffers[best].Bytes) {
			best = b
		}
		if largest == -1 || p.Buffers[b].Bytes > p.Buffers[largest].Bytes {
			largest = b
		}
	}
	if best >= 0 {
		return best
	}
	if largest >= 0 {
		p.Buffers[largest].Bytes = bytes
		return largest
	}
	p.Buffers = append(p.Buffers, PlanBuffer{Bytes: bytes, Elems: elems})
	return len(p.Buffers) - 1
}
