package relay

import (
	"fmt"
	"math"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/persistent"
	"bolt/internal/tensor"
)

// replaceUses rewires every consumer of old (and the graph output) to
// consume new instead.
func (g *Graph) replaceUses(old, new *Node) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = new
			}
		}
	}
	if g.Output == old {
		g.Output = new
	}
}

// FoldBatchNorm folds inference-mode BatchNorm layers into the
// preceding convolution's weights and bias:
//
//	scale = gamma / sqrt(var + eps)
//	W'    = W * scale (per output channel)
//	b'    = beta - mean * scale
//
// The BN node is replaced by a BiasAdd so the epilogue-fusion pass can
// absorb it into the kernel.
func FoldBatchNorm(g *Graph) int {
	consumers := g.Consumers()
	folded := 0
	for _, n := range g.Nodes {
		if n.Op != OpBatchNorm {
			continue
		}
		conv := n.Inputs[0]
		if conv.Op != OpConv2D || len(consumers[conv.ID]) != 1 {
			continue
		}
		gamma, beta, mean, variance := n.Inputs[1], n.Inputs[2], n.Inputs[3], n.Inputs[4]
		w := conv.Inputs[1]
		if w.Op != OpConstant || gamma.Op != OpConstant || beta.Op != OpConstant ||
			mean.Op != OpConstant || variance.Op != OpConstant {
			continue
		}
		oc := conv.Conv.OC
		scale := make([]float32, oc)
		shift := make([]float32, oc)
		for i := 0; i < oc; i++ {
			s := gamma.Value.Data()[i] / float32(math.Sqrt(float64(variance.Value.Data()[i])+n.Eps))
			scale[i] = s
			shift[i] = beta.Value.Data()[i] - mean.Value.Data()[i]*s
		}
		// Scale weights per output channel (OHWI: oc is the outer dim).
		wNew := w.Value.Clone()
		per := wNew.NumElements() / oc
		for i := 0; i < oc; i++ {
			for j := 0; j < per; j++ {
				wNew.Data()[i*per+j] *= scale[i]
			}
		}
		if wNew.DType() == tensor.INT8 {
			// Per-channel BN scaling moved the weight range; re-pick the
			// per-tensor quantization scale instead of snapping to the
			// pre-fold grid.
			wNew.CalibrateScale()
		} else {
			wNew.Quantize()
		}
		wNode := &Node{ID: g.NewID(), Op: OpConstant, Name: w.Name + "_bnfold",
			Shape: wNew.Shape().Clone(), DType: wNew.DType(), Layout: wNew.Layout(), Value: wNew}
		bdt := n.DType
		if bdt == tensor.INT8 {
			bdt = tensor.FP16 // the int8 grid would destroy small BN shifts
		}
		bias := tensor.FromData(bdt, shift, oc)
		bNode := &Node{ID: g.NewID(), Op: OpConstant, Name: w.Name + "_bnbias",
			Shape: bias.Shape().Clone(), DType: bias.DType(), Layout: bias.Layout(), Value: bias}
		conv.Inputs[1] = wNode
		biasAdd := &Node{ID: g.NewID(), Op: OpBiasAdd, Inputs: []*Node{conv, bNode},
			Shape: n.Shape.Clone(), DType: n.DType, Layout: n.Layout}

		// Splice: constants and the new BiasAdd enter the node list in
		// place of the BN node.
		g.insertAfter(conv, wNode, bNode)
		g.replaceNode(n, biasAdd)
		folded++
		consumers = g.Consumers()
	}
	g.rebuild()
	return folded
}

// insertAfter places extra nodes immediately after anchor in the
// topological order.
func (g *Graph) insertAfter(anchor *Node, extra ...*Node) {
	for i, n := range g.Nodes {
		if n == anchor {
			rest := append([]*Node{}, g.Nodes[i+1:]...)
			g.Nodes = append(append(g.Nodes[:i+1], extra...), rest...)
			return
		}
	}
	g.Nodes = append(g.Nodes, extra...)
}

// replaceNode swaps old for new in the node list and rewires consumers.
func (g *Graph) replaceNode(old, new *Node) {
	for i, n := range g.Nodes {
		if n == old {
			g.Nodes[i] = new
			break
		}
	}
	g.replaceUses(old, new)
}

// FuseEpilogue absorbs BiasAdd and activation nodes that immediately
// follow a Dense/Conv2D anchor into the anchor's epilogue (the CUTLASS
// epilogue-fusion prerequisite of §3.1). Returns the number of anchors
// that gained a fused epilogue.
func FuseEpilogue(g *Graph) int {
	fused := 0
	for {
		consumers := g.Consumers()
		changed := false
		for _, n := range g.Nodes {
			if !(n.Op == OpDense || n.Op == OpConv2D) {
				continue
			}
			cs := consumers[n.ID]
			if len(cs) != 1 {
				continue
			}
			next := cs[0]
			switch next.Op {
			case OpBiasAdd:
				if n.Epilogue != nil && n.Epilogue.Act != cutlass.ActIdentity {
					continue // activation already applied; bias cannot follow
				}
				epi := ensureEpilogue(n)
				if epi.BiasVector {
					continue // already has a bias
				}
				epi.Beta = 1
				epi.BiasVector = true
				n.Inputs = append(n.Inputs, next.Inputs[1])
				g.replaceNode(next, n)
				changed = true
				fused++
			case OpActivation:
				epi := ensureEpilogue(n)
				if epi.Act != cutlass.ActIdentity {
					continue
				}
				epi.Act = next.Act
				g.replaceNode(next, n)
				changed = true
				fused++
			}
			if changed {
				break
			}
		}
		if !changed {
			break
		}
	}
	g.rebuild()
	return fused
}

func ensureEpilogue(n *Node) *cutlass.Epilogue {
	if n.Epilogue == nil {
		e := cutlass.DefaultEpilogue()
		e.OutDType = n.DType
		n.Epilogue = &e
	}
	return n.Epilogue
}

// epilogueOf returns the node's epilogue or the default.
func epilogueOf(n *Node) cutlass.Epilogue {
	if n.Epilogue != nil {
		return *n.Epilogue
	}
	e := cutlass.DefaultEpilogue()
	e.OutDType = n.DType
	return e
}

// FusePersistent fuses chains of back-to-back Dense or Conv2D anchors
// into persistent kernels (paper §3.1.1) when threadblock residence
// holds and the device model predicts a speedup. Must run after
// FuseEpilogue. Returns the number of chains created.
func FusePersistent(g *Graph, d *gpu.Device) int {
	created := 0
	for {
		consumers := g.Consumers()
		var head *Node
		var chain []*Node
		for _, n := range g.Nodes {
			if !(n.Op == OpDense || n.Op == OpConv2D) {
				continue
			}
			c := collectChain(n, consumers)
			if len(c) >= 2 {
				head = n
				chain = c
				break
			}
		}
		if head == nil {
			break
		}
		if !tryFuseChain(g, head, chain, d) {
			// Mark the head so we do not retry it forever.
			head.Target = TargetBolt
			continue
		}
		created++
	}
	// Clear the temporary marks.
	for _, n := range g.Nodes {
		if n.Target == TargetBolt {
			n.Target = TargetUnassigned
		}
	}
	g.rebuild()
	return created
}

// collectChain walks forward from anchor while the single consumer is a
// fusable follower of the same kind.
func collectChain(anchor *Node, consumers map[int][]*Node) []*Node {
	if anchor.Target != TargetUnassigned { // already attempted
		return nil
	}
	chain := []*Node{anchor}
	cur := anchor
	for {
		cs := consumers[cur.ID]
		if len(cs) != 1 {
			break
		}
		next := cs[0]
		if next.Op != anchor.Op || next.Inputs[0] != cur {
			break
		}
		if anchor.Op == OpConv2D {
			s := next.Conv
			// Threadblock residence for convs: trailing layers must be
			// 1x1, stride 1, no padding (paper §3.1.1).
			if s.KH != 1 || s.KW != 1 || s.StrideH != 1 || s.StrideW != 1 || s.PadH != 0 || s.PadW != 0 {
				break
			}
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// tryFuseChain validates residence and benefit; on success it rewrites
// the graph with a persistent node and returns true.
func tryFuseChain(g *Graph, head *Node, chain []*Node, d *gpu.Device) bool {
	if head.Op == OpDense {
		return tryFuseGemmChain(g, chain, d)
	}
	return tryFuseConvChain(g, chain, d)
}

func tryFuseGemmChain(g *Graph, chain []*Node, d *gpu.Device) bool {
	m := chain[0].Shape[0]
	layers := make([]persistent.GemmLayer, len(chain))
	for i, n := range chain {
		k := n.Inputs[1].Shape[0]
		nn := n.Inputs[1].Shape[1]
		cfg, ok := ResidenceConfigFor(nn, n.DType, d)
		if !ok {
			return false
		}
		layers[i] = persistent.GemmLayer{N: nn, K: k, Config: cfg, Epilogue: epilogueOf(n)}
	}
	f, err := persistent.ChooseGemmResidence(m, layers, d)
	if err != nil {
		return false
	}
	if f.Time(d) >= persistent.UnfusedGemmTime(d, m, layers) {
		return false // fusion not beneficial (compute-bound chain)
	}
	node := &Node{ID: g.NewID(), Op: OpPersistentGemm,
		Shape: chain[len(chain)-1].Shape.Clone(), DType: chain[0].DType, Layout: tensor.LayoutRowMajor}
	node.Inputs = []*Node{chain[0].Inputs[0]}
	for i, n := range chain {
		cl := ChainLayer{N: layers[i].N, K: layers[i].K, Epilogue: layers[i].Epilogue, Weight: n.Inputs[1]}
		node.Inputs = append(node.Inputs, n.Inputs[1])
		if len(n.Inputs) > 2 { // fused bias
			cl.Bias = n.Inputs[2]
			node.Inputs = append(node.Inputs, n.Inputs[2])
		}
		node.Chain = append(node.Chain, cl)
	}
	g.insertAfter(chain[len(chain)-1], node)
	g.replaceUses(chain[len(chain)-1], node)
	g.rebuild()
	return true
}

func tryFuseConvChain(g *Graph, chain []*Node, d *gpu.Device) bool {
	layers := make([]persistent.ConvLayer, len(chain))
	for i, n := range chain {
		cfg, ok := ResidenceConfigFor(n.Conv.OC, n.DType, d)
		if !ok {
			return false
		}
		if n.Conv.IC%cfg.AlignA != 0 {
			a := AlignFor(n.Conv.IC)
			if m := cutlass.MaxAlignment(n.DType); a > m {
				a = m
			}
			cfg.AlignA, cfg.AlignB = a, a
		}
		layers[i] = persistent.ConvLayer{Shape: n.Conv, Config: cfg, Epilogue: epilogueOf(n)}
	}
	f, err := persistent.ChooseConvResidence(layers, d)
	if err != nil {
		return false
	}
	if f.Time(d) >= persistent.UnfusedConvTime(d, layers) {
		return false
	}
	last := chain[len(chain)-1]
	node := &Node{ID: g.NewID(), Op: OpPersistentConv,
		Shape: last.Shape.Clone(), DType: chain[0].DType, Layout: last.Layout}
	node.Inputs = []*Node{chain[0].Inputs[0]}
	for i, n := range chain {
		cl := ChainLayer{Conv: n.Conv, Epilogue: layers[i].Epilogue, Weight: n.Inputs[1]}
		node.Inputs = append(node.Inputs, n.Inputs[1])
		if len(n.Inputs) > 2 {
			cl.Bias = n.Inputs[2]
			node.Inputs = append(node.Inputs, n.Inputs[2])
		}
		node.Chain = append(node.Chain, cl)
	}
	g.insertAfter(last, node)
	g.replaceUses(last, node)
	g.rebuild()
	return true
}

// ResidenceConfig builds a residence-compatible FP16 tile config for
// output extent n — see ResidenceConfigFor.
func ResidenceConfig(n int, d *gpu.Device) (cutlass.GemmConfig, bool) {
	return ResidenceConfigFor(n, tensor.FP16, d)
}

// ResidenceConfigFor builds a residence-compatible tile config for
// output extent n in the given dtype, or reports that residence is
// infeasible (N too large for one threadblock tile, or the dtype's
// staging does not fit in shared memory). FP32 chains fuse on the
// SIMT path (no FP32 tensor cores). Exported for the codegen stage,
// which must rebuild the same configurations when lowering persistent
// nodes.
func ResidenceConfigFor(n int, dt tensor.DType, d *gpu.Device) (cutlass.GemmConfig, bool) {
	tbN := (n + 7) / 8 * 8
	if tbN < 8 {
		tbN = 8
	}
	op := gpu.OpClassTensorOp
	inst := cutlass.InstructionShape(d.Arch)
	if dt == tensor.FP32 {
		op = gpu.OpClassSIMT
		inst = cutlass.Shape3{M: 1, N: 1, K: 1}
	}
	align := cutlass.MaxAlignment(dt)
	if align > 8 {
		align = 8
	}
	cfg := cutlass.GemmConfig{
		TB:     cutlass.Shape3{M: 64, N: tbN, K: 32},
		Warp:   cutlass.Shape3{M: 16, N: tbN, K: 32},
		Inst:   inst,
		Stages: 2, SwizzleLog: 0,
		AlignA: align, AlignB: align, AlignC: align,
		Op: op, DType: dt,
	}
	if n%align != 0 {
		a := AlignFor(n)
		if m := cutlass.MaxAlignment(dt); a > m {
			a = m
		}
		cfg.AlignA, cfg.AlignB, cfg.AlignC = a, a, a
	}
	// Quick feasibility probe: the shared-memory staging must fit.
	if cfg.SharedMemBytes() > d.SharedMemBlock {
		return cfg, false
	}
	return cfg, true
}

// AlignFor returns the widest legal alignment for extent n.
func AlignFor(n int) int {
	for _, a := range []int{8, 4, 2} {
		if n%a == 0 {
			return a
		}
	}
	return 1
}

// PartitionBYOC assigns each node to the Bolt backend (templated
// CUTLASS codegen) or the TVM fallback, the BYOC split of paper
// Figure 3. Anchors and padding/layout ops adjacent to them go to
// Bolt; everything else stays on TVM.
func PartitionBYOC(g *Graph) (boltNodes, tvmNodes int) {
	for _, n := range g.Nodes {
		switch {
		case n.IsAnchor() || n.Op == OpPadChannels || n.Op == OpSliceChannels || n.Op == OpLayoutTransform:
			n.Target = TargetBolt
			boltNodes++
		case n.Op == OpInput || n.Op == OpConstant:
			n.Target = TargetUnassigned
		default:
			n.Target = TargetTVM
			tvmNodes++
		}
	}
	return boltNodes, tvmNodes
}

// Optimize runs the full Bolt graph pipeline in order: BatchNorm
// folding, epilogue fusion, layout transformation, kernel padding,
// persistent fusion, and BYOC partitioning.
func Optimize(g *Graph, d *gpu.Device) error {
	FoldBatchNorm(g)
	FuseEpilogue(g)
	if err := TransformLayout(g); err != nil {
		return fmt.Errorf("relay: layout transform: %w", err)
	}
	PadChannels(g)
	FusePersistent(g, d)
	PartitionBYOC(g)
	return g.Validate()
}
