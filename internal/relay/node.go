// Package relay implements a small dataflow-graph IR in the spirit of
// TVM Relay, sufficient to express the convolutional networks and
// transformer GEMM workloads in the Bolt paper, plus the graph-level
// passes Bolt adds: BatchNorm folding, epilogue fusion, persistent
// kernel fusion, layout transformation, channel padding, and BYOC
// partitioning (paper Figure 3).
package relay

import (
	"fmt"

	"bolt/internal/cutlass"
	"bolt/internal/tensor"
)

// OpKind enumerates the operators the IR understands.
type OpKind int

const (
	// OpInput is a graph input placeholder.
	OpInput OpKind = iota
	// OpConstant is an embedded weight/parameter tensor.
	OpConstant
	// OpDense is a fully connected layer: X(M×K) · W(K×N).
	OpDense
	// OpConv2D is a 2-D convolution.
	OpConv2D
	// OpBiasAdd broadcasts a vector over the channel/feature dimension.
	OpBiasAdd
	// OpActivation applies an elementwise nonlinearity.
	OpActivation
	// OpAdd is elementwise addition (residual connections).
	OpAdd
	// OpBatchNorm is inference-mode batch normalization.
	OpBatchNorm
	// OpMaxPool is 2-D max pooling.
	OpMaxPool
	// OpGlobalAvgPool averages over the spatial dimensions.
	OpGlobalAvgPool
	// OpFlatten collapses all non-batch dimensions.
	OpFlatten
	// OpSoftmax is a row softmax.
	OpSoftmax
	// OpLayoutTransform permutes NCHW <-> NHWC.
	OpLayoutTransform
	// OpPadChannels zero-pads the channel dimension (kernel padding).
	OpPadChannels
	// OpSliceChannels drops trailing padded channels.
	OpSliceChannels
	// OpPersistentGemm is a fused chain of Dense layers (persistent
	// kernel, created by the persistent-fusion pass).
	OpPersistentGemm
	// OpPersistentConv is a fused chain of Conv2D layers.
	OpPersistentConv
)

var opNames = map[OpKind]string{
	OpInput: "input", OpConstant: "constant", OpDense: "dense",
	OpConv2D: "conv2d", OpBiasAdd: "bias_add", OpActivation: "activation",
	OpAdd: "add", OpBatchNorm: "batch_norm", OpMaxPool: "max_pool2d",
	OpGlobalAvgPool: "global_avg_pool2d", OpFlatten: "flatten",
	OpSoftmax: "softmax", OpLayoutTransform: "layout_transform",
	OpPadChannels: "pad_channels", OpSliceChannels: "slice_channels",
	OpPersistentGemm: "persistent_gemm", OpPersistentConv: "persistent_conv2d",
}

// String names the op in relay convention.
func (o OpKind) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Target identifies which backend executes a node after BYOC
// partitioning.
type Target int

const (
	// TargetUnassigned means partitioning has not run.
	TargetUnassigned Target = iota
	// TargetBolt marks nodes offloaded to Bolt's CUTLASS codegen.
	TargetBolt
	// TargetTVM marks nodes kept on the fallback TVM codegen.
	TargetTVM
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetBolt:
		return "bolt"
	case TargetTVM:
		return "tvm"
	default:
		return "unassigned"
	}
}

// PoolAttrs configures pooling operators.
type PoolAttrs struct {
	Kernel, Stride, Pad int
}

// ChainLayer is one layer of a persistent fused chain.
type ChainLayer struct {
	// Conv is set for OpPersistentConv chains.
	Conv cutlass.ConvShape
	// N, K are set for OpPersistentGemm chains.
	N, K     int
	Epilogue cutlass.Epilogue
	Weight   *Node
	Bias     *Node
}

// Node is one operator instance in the graph.
type Node struct {
	ID     int
	Op     OpKind
	Name   string
	Inputs []*Node

	// Inferred output type.
	Shape  tensor.Shape
	DType  tensor.DType
	Layout tensor.Layout

	// Per-op attributes (only the relevant ones are set).
	Value    *tensor.Tensor    // OpConstant
	Units    int               // OpDense output features
	Conv     cutlass.ConvShape // OpConv2D
	Act      cutlass.Activation
	Pool     PoolAttrs
	Eps      float64       // OpBatchNorm
	PadTo    int           // OpPadChannels / OpSliceChannels target channels
	ToLayout tensor.Layout // OpLayoutTransform

	// Epilogue is attached to Dense/Conv2D nodes by the epilogue-fusion
	// pass; nil means the op runs with a default linear epilogue.
	Epilogue *cutlass.Epilogue

	// Chain holds the fused layers for persistent ops.
	Chain []ChainLayer

	// Target is assigned by the BYOC partitioner.
	Target Target

	// Folded marks glue ops (layout transforms, padding) that Bolt's
	// codegen folds into an adjacent templated kernel so they cost no
	// extra kernel launch (paper §3.2.3).
	Folded bool
}

// String renders a concise description.
func (n *Node) String() string {
	return fmt.Sprintf("%%%d = %s%s", n.ID, n.Op, n.Shape)
}

// IsAnchor reports whether the node is a GEMM/Conv compute anchor that
// Bolt can generate a templated kernel for.
func (n *Node) IsAnchor() bool {
	switch n.Op {
	case OpDense, OpConv2D, OpPersistentGemm, OpPersistentConv:
		return true
	}
	return false
}

// Graph is a DAG of nodes in topological order ending at Output.
type Graph struct {
	Nodes  []*Node
	Inputs []*Node
	Output *Node

	// nextID is the low-water mark for NewID; it only grows, so IDs
	// handed out before a new node is spliced in can never be reissued.
	nextID int
}

// NewID returns a node ID distinct from every node already in the
// graph and from every ID this graph has handed out before. Passes
// must use it for the nodes they create: the memory planner and the
// slot-indexed executor key state by node ID, so a collision would
// silently alias two values.
func (g *Graph) NewID() int {
	id := g.nextID
	for _, n := range g.Nodes {
		if n.ID >= id {
			id = n.ID + 1
		}
	}
	g.nextID = id + 1
	return id
}

// Validate checks topological ordering and input resolution.
func (g *Graph) Validate() error {
	seen := make(map[int]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !seen[in.ID] {
				return fmt.Errorf("relay: node %s uses %s before definition", n, in)
			}
		}
		if seen[n.ID] {
			return fmt.Errorf("relay: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
	}
	if g.Output == nil || !seen[g.Output.ID] {
		return fmt.Errorf("relay: output node missing from graph")
	}
	return nil
}

// Consumers returns a map from node ID to the nodes that consume it.
func (g *Graph) Consumers() map[int][]*Node {
	c := make(map[int][]*Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			c[in.ID] = append(c[in.ID], n)
		}
	}
	return c
}

// CountOp returns how many nodes have the given op kind.
func (g *Graph) CountOp(op OpKind) int {
	c := 0
	for _, n := range g.Nodes {
		if n.Op == op {
			c++
		}
	}
	return c
}

// rebuild re-derives the node list as a DFS-postorder topological sort
// from the output, which simultaneously drops dead nodes and repairs
// ordering after passes splice in nodes (e.g. a fused bias constant
// that was defined after its new consumer).
func (g *Graph) rebuild() {
	visited := make(map[int]bool)
	order := make([]*Node, 0, len(g.Nodes))
	var visit func(n *Node)
	visit = func(n *Node) {
		if visited[n.ID] {
			return
		}
		visited[n.ID] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	// Keep graph inputs alive even if dead-code eliminated paths no
	// longer reach them (callers still feed them).
	for _, in := range g.Inputs {
		visit(in)
	}
	visit(g.Output)
	g.Nodes = order
}
