package relay

import (
	"fmt"

	"bolt/internal/tensor"
)

// CastPrecision clones the graph with its compute precision rewritten
// to dt — the precision-rewrite pass behind per-tenant FP32/FP16/INT8
// serving variants. The source graph is never modified, and unlike
// Rebatch the clone does NOT share parameter constants: weights are
// cast copies, so one source model can back variants of every
// precision simultaneously.
//
// The rewrite rules per target dtype:
//
//   - FP32: every node and every constant is annotated/cast to FP32.
//     Widening from the authored FP16 grid is lossless, which is what
//     makes the FP32 variant usable as the accuracy oracle.
//   - FP16: every node and constant follows the authored scheme of the
//     model zoo (cast to the FP16 grid).
//   - INT8: weight-side quantization with float glue ("W8" serving).
//     Only the GEMM/Conv anchors — where the FLOPs and the tensor-core
//     pricing live — are annotated INT8; their matmul/filter weights
//     are symmetrically quantized with a per-tensor calibrated scale
//     (maxAbs/127). Small per-channel vectors (biases, batch-norm
//     parameters) and elementwise glue keep the authored dtype: the
//     INT8 grid would destroy them and they are memory-, not
//     compute-bound, so nothing is gained by quantizing them.
//
// Graph inputs always keep their authored dtype: the request tensors a
// serving client submits are part of the model's contract and do not
// change when the tenant picks a cheaper compute precision.
func CastPrecision(g *Graph, dt tensor.DType) (*Graph, error) {
	switch dt {
	case tensor.FP16, tensor.FP32, tensor.INT8:
	default:
		return nil, fmt.Errorf("relay: cast to unsupported precision %v", dt)
	}
	consumers := g.Consumers()

	clone := make(map[*Node]*Node, len(g.Nodes))
	ng := &Graph{nextID: g.nextID}
	for _, n := range g.Nodes {
		c := *n // shallow copy; immutable attrs carry over
		c.Inputs = make([]*Node, len(n.Inputs))
		for i, in := range n.Inputs {
			cin, ok := clone[in]
			if !ok {
				return nil, fmt.Errorf("relay: cast: node %s uses %s before definition", n, in)
			}
			c.Inputs[i] = cin
		}
		c.Shape = n.Shape.Clone()
		if n.Epilogue != nil {
			epi := *n.Epilogue
			c.Epilogue = &epi
		}
		if len(n.Chain) > 0 {
			c.Chain = append([]ChainLayer(nil), n.Chain...)
			for i := range c.Chain {
				c.Chain[i].Weight = clone[n.Chain[i].Weight]
				if n.Chain[i].Bias != nil {
					c.Chain[i].Bias = clone[n.Chain[i].Bias]
				}
			}
		}

		switch {
		case n.Op == OpInput:
			// Authored activation dtype is the client contract.
		case n.Op == OpConstant:
			if nd := castConstant(n, consumers[n.ID], dt); nd != nil {
				c.Value = nd
				c.DType = nd.DType()
			}
		case dt != tensor.INT8 || n.IsAnchor():
			c.DType = dt
			if c.Epilogue != nil {
				c.Epilogue.OutDType = dt
			}
			for i := range c.Chain {
				c.Chain[i].Epilogue.OutDType = dt
			}
		}

		clone[n] = &c
		ng.Nodes = append(ng.Nodes, &c)
	}
	for _, in := range g.Inputs {
		ng.Inputs = append(ng.Inputs, clone[in])
	}
	ng.Output = clone[g.Output]
	if err := ng.Validate(); err != nil {
		return nil, fmt.Errorf("relay: cast: %w", err)
	}
	return ng, nil
}

// castConstant returns the cast copy of a constant's value, or nil to
// keep the original (shared) tensor. Under INT8 only matmul/filter
// weights — constants consumed as the weight operand of an anchor —
// are quantized, with a per-tensor calibrated scale.
func castConstant(n *Node, uses []*Node, dt tensor.DType) *tensor.Tensor {
	if n.Value == nil {
		return nil
	}
	if dt == tensor.INT8 {
		if !isAnchorWeight(n, uses) {
			return nil
		}
		return n.Value.AsType(tensor.INT8)
	}
	if n.Value.DType() == dt {
		return nil
	}
	return n.Value.AsType(dt)
}

// isAnchorWeight reports whether the constant is the weight operand of
// some GEMM/Conv anchor (bias operands stay unquantized).
func isAnchorWeight(n *Node, uses []*Node) bool {
	for _, u := range uses {
		switch u.Op {
		case OpDense, OpConv2D:
			if u.Inputs[1] == n {
				return true
			}
		}
	}
	return false
}
