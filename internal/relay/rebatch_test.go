package relay

import (
	"testing"

	"bolt/internal/cutlass"
	"bolt/internal/gpu"
	"bolt/internal/tensor"
)

// buildRebatchModel is a small conv+dense CNN at the given batch.
func buildRebatchModel(batch int) *Graph {
	b := NewBuilder()
	x := b.Input("image", tensor.FP16, batch, 8, 8, 8)
	c := b.Conv2D(x, b.Weight("w1", 16, 3, 3, 8), 1, 1)
	c = b.BiasAdd(c, b.Weight("b1", 16))
	c = b.Activation(c, cutlass.ActReLU)
	g := b.GlobalAvgPool(c)
	d := b.Dense(g, b.Weight("fc", 16, 4))
	return b.Build(b.Softmax(d))
}

func TestRebatchShapesAndSharing(t *testing.T) {
	src := buildRebatchModel(1)
	got, err := Rebatch(src, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := buildRebatchModel(6)
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("node count %d, want %d", len(got.Nodes), len(want.Nodes))
	}
	for i, n := range got.Nodes {
		w := want.Nodes[i]
		if n.Op != w.Op || !n.Shape.Equal(w.Shape) {
			t.Errorf("node %d: %s, want %s", i, n, w)
		}
		if n.Op == OpConv2D && n.Conv.N != 6 {
			t.Errorf("conv batch %d, want 6", n.Conv.N)
		}
	}
	// Constants are shared by reference, not copied.
	for i, n := range got.Nodes {
		if n.Op == OpConstant && n.Value != src.Nodes[i].Value {
			t.Errorf("constant %s was copied", n.Name)
		}
	}
	// The source graph is untouched.
	for _, n := range src.Nodes {
		if n.Op != OpConstant && n.Shape[0] != 1 {
			t.Errorf("source node %s mutated", n)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebatchIsCompilableClone(t *testing.T) {
	src := buildRebatchModel(1)
	g, err := Rebatch(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The clone must survive the full optimization pipeline without
	// disturbing the source (passes mutate graphs in place).
	if err := Optimize(g, gpu.T4()); err != nil {
		t.Fatal(err)
	}
	if err := src.Validate(); err != nil {
		t.Fatalf("source invalidated: %v", err)
	}
	if src.CountOp(OpLayoutTransform) != 0 {
		t.Error("optimizing the clone leaked layout transforms into the source")
	}
	// A plan for the optimized clone must exist (the serving engine
	// compiles variants through codegen, which plans memory).
	if p := PlanMemory(g); len(p.Buffers) == 0 {
		t.Error("rebatched clone has no planned buffers")
	}
}

func TestRebatchErrors(t *testing.T) {
	src := buildRebatchModel(2)
	if _, err := Rebatch(src, 0); err == nil {
		t.Error("batch 0 must error")
	}
	// A graph whose second input does not carry the batch in dim 0
	// must be rejected, not silently mis-batched.
	b := NewBuilder()
	x := b.Input("x", tensor.FP16, 2, 4)
	y := b.Input("odd", tensor.FP16, 3, 4)
	d := b.Dense(x, b.Weight("w", 4, 3))
	_ = y
	g := b.Build(d)
	g.Inputs = append(g.Inputs, y)
	if _, err := Rebatch(g, 5); err == nil {
		t.Error("mismatched leading dim must error")
	}
}

func TestRebatchSameBatchIsIndependentClone(t *testing.T) {
	src := buildRebatchModel(2)
	g, err := Rebatch(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Nodes[0].Shape[0] = 99
	if src.Nodes[0].Shape[0] != 2 {
		t.Error("clone shares shape storage with source")
	}
}
