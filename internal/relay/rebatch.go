package relay

import "fmt"

// Rebatch clones the graph at a new leading batch dimension: every
// input and intermediate value has dim 0 rewritten from the source
// batch to the requested one, and convolution geometry follows. The
// source graph is not modified, and constants (weights, folded
// parameters) are shared by reference — a serving engine holding many
// batch variants of one model pays for a single set of parameters.
//
// The clone is a fresh graph, so the usual compilation pipeline
// (relay.Optimize, codegen.Compile) can mutate it freely. This is how
// the serving engine manufactures batch-bucketed variants of one
// source model: new batch sizes are new workloads for the tuner
// (paper §2.1's dynamic-shape motivation), and the tunelog cache keeps
// any previously seen variant measurement-free.
//
// Rebatch requires the batch to be the leading dimension of every
// non-constant value, which holds for every layout the IR uses (NCHW,
// NHWC, row-major activations); a node whose leading extent differs
// from the graph's input batch is an error.
func Rebatch(g *Graph, batch int) (*Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("relay: rebatch to non-positive batch %d", batch)
	}
	if len(g.Inputs) == 0 {
		return nil, fmt.Errorf("relay: rebatch needs a graph with inputs")
	}
	if len(g.Inputs[0].Shape) == 0 {
		return nil, fmt.Errorf("relay: rebatch input %s has no batch dimension", g.Inputs[0])
	}
	oldBatch := g.Inputs[0].Shape[0]

	clone := make(map[*Node]*Node, len(g.Nodes))
	ng := &Graph{nextID: g.nextID}
	for _, n := range g.Nodes {
		c := *n // shallow copy; immutable attrs carry over
		c.Inputs = make([]*Node, len(n.Inputs))
		for i, in := range n.Inputs {
			cin, ok := clone[in]
			if !ok {
				return nil, fmt.Errorf("relay: rebatch: node %s uses %s before definition", n, in)
			}
			c.Inputs[i] = cin
		}
		c.Shape = n.Shape.Clone()
		if n.Epilogue != nil {
			epi := *n.Epilogue
			c.Epilogue = &epi
		}
		if len(n.Chain) > 0 {
			c.Chain = append([]ChainLayer(nil), n.Chain...)
			for i := range c.Chain {
				c.Chain[i].Weight = clone[n.Chain[i].Weight]
				if n.Chain[i].Bias != nil {
					c.Chain[i].Bias = clone[n.Chain[i].Bias]
				}
				if n.Op == OpPersistentConv {
					c.Chain[i].Conv.N = batch
				}
			}
		}
		if n.Op != OpConstant {
			// Constants are batch-independent (and shared); everything
			// else carries the batch in its leading extent.
			if len(c.Shape) == 0 || c.Shape[0] != oldBatch {
				return nil, fmt.Errorf("relay: rebatch: node %s leading dim is not the batch %d", n, oldBatch)
			}
			c.Shape[0] = batch
			if n.Op == OpConv2D {
				c.Conv.N = batch
			}
		}
		clone[n] = &c
		ng.Nodes = append(ng.Nodes, &c)
	}
	for _, in := range g.Inputs {
		ng.Inputs = append(ng.Inputs, clone[in])
	}
	ng.Output = clone[g.Output]
	if err := ng.Validate(); err != nil {
		return nil, fmt.Errorf("relay: rebatch: %w", err)
	}
	return ng, nil
}
