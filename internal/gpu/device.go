// Package gpu models an NVIDIA GPU as an analytic performance simulator.
//
// The real Bolt artifact measures kernels on a Tesla T4. This package is
// the substitute substrate: it prices a kernel launch from first
// principles — a compute/memory roofline modulated by occupancy, wave
// quantization, vectorized-access width (alignment), operator class
// (tensor core vs SIMT), and a fixed kernel launch overhead. Every
// optimization Bolt performs (tile-shape selection, epilogue and
// persistent fusion, padding, layout) changes one of those mechanical
// inputs, so relative performance orderings emerge from the model rather
// than being hard-coded per experiment.
package gpu

import (
	"fmt"
	"math"

	"bolt/internal/tensor"
)

// Arch identifies a GPU microarchitecture generation. Bolt's profiler
// keys its heuristic search space on this.
type Arch int

const (
	// SM70 is Volta (V100).
	SM70 Arch = 70
	// SM75 is Turing (Tesla T4) — the paper's evaluation platform.
	SM75 Arch = 75
	// SM80 is Ampere (A100).
	SM80 Arch = 80
)

// String returns e.g. "sm_75".
func (a Arch) String() string { return fmt.Sprintf("sm_%d", int(a)) }

// OpClass distinguishes the functional units a kernel's inner loop
// issues to. CUTLASS uses the same split (OpClassTensorOp vs
// OpClassSimt); Ansor-generated FP16 schedules are SIMT-only, which is
// the root of the performance gap in the paper's Figure 1.
type OpClass int

const (
	// OpClassSIMT issues to ordinary CUDA cores (FFMA/HFMA2).
	OpClassSIMT OpClass = iota
	// OpClassTensorOp issues to tensor cores (HMMA/IMMA).
	OpClassTensorOp
)

// String names the op class in CUTLASS's convention.
func (o OpClass) String() string {
	if o == OpClassTensorOp {
		return "TensorOp"
	}
	return "Simt"
}

// Device describes one GPU. All throughputs are peak theoretical rates;
// the simulator derates them with kernel-specific efficiency factors.
type Device struct {
	Name string
	Arch Arch

	SMs        int     // streaming multiprocessors
	ClockGHz   float64 // boost clock
	WarpSize   int     // threads per warp (32 on every NVIDIA part)
	MaxWarps   int     // resident warps per SM
	MaxBlocks  int     // resident blocks per SM
	MaxThreads int     // resident threads per SM

	RegistersPerSM int // 32-bit registers per SM
	MaxRegsThread  int // per-thread register cap
	SharedMemPerSM int // bytes of shared memory per SM
	SharedMemBlock int // max shared memory per block (opt-in carveout)

	L2Bytes     int     // L2 cache size
	DRAMBWGBs   float64 // global memory bandwidth, GB/s
	LaunchUs    float64 // kernel launch overhead, microseconds
	TensorFP16  float64 // tensor core FP16 TFLOPS
	TensorINT8  float64 // tensor core INT8 TOPS
	SIMTFP32    float64 // CUDA core FP32 TFLOPS
	SIMTFP16    float64 // CUDA core FP16 (HFMA2) TFLOPS
	SMEMBWGBsSM float64 // shared memory bandwidth per SM, GB/s
}

// T4 returns the paper's evaluation device: an NVIDIA Tesla T4
// (Turing TU104, sm_75, 16 GB GDDR6).
func T4() *Device {
	return &Device{
		Name: "Tesla T4", Arch: SM75,
		SMs: 40, ClockGHz: 1.59, WarpSize: 32,
		MaxWarps: 32, MaxBlocks: 16, MaxThreads: 1024,
		RegistersPerSM: 65536, MaxRegsThread: 255,
		SharedMemPerSM: 64 << 10, SharedMemBlock: 64 << 10,
		L2Bytes: 4 << 20, DRAMBWGBs: 320, LaunchUs: 5.0,
		TensorFP16: 65, TensorINT8: 130, SIMTFP32: 8.1, SIMTFP16: 16.2,
		SMEMBWGBsSM: 128,
	}
}

// A100 returns an NVIDIA A100-SXM4-40GB (Ampere GA100, sm_80), used to
// validate the paper's claim that Bolt-generated FP16 GEMM reaches
// >95% of the hardware limit on Ampere.
func A100() *Device {
	return &Device{
		Name: "A100-SXM4-40GB", Arch: SM80,
		SMs: 108, ClockGHz: 1.41, WarpSize: 32,
		MaxWarps: 64, MaxBlocks: 32, MaxThreads: 2048,
		RegistersPerSM: 65536, MaxRegsThread: 255,
		SharedMemPerSM: 164 << 10, SharedMemBlock: 164 << 10,
		L2Bytes: 40 << 20, DRAMBWGBs: 1555, LaunchUs: 4.0,
		TensorFP16: 312, TensorINT8: 624, SIMTFP32: 19.5, SIMTFP16: 78,
		SMEMBWGBsSM: 256,
	}
}

// PeakTFLOPS returns the peak throughput (TFLOPS) for an op class and
// data type on this device.
func (d *Device) PeakTFLOPS(op OpClass, dt tensor.DType) float64 {
	switch op {
	case OpClassTensorOp:
		switch dt {
		case tensor.FP16:
			return d.TensorFP16
		case tensor.INT8:
			return d.TensorINT8
		default:
			// No FP32 tensor op on Turing; fall back to SIMT.
			return d.SIMTFP32
		}
	default:
		switch dt {
		case tensor.FP16:
			return d.SIMTFP16
		case tensor.INT8:
			return 4 * d.SIMTFP32 // dp4a
		default:
			return d.SIMTFP32
		}
	}
}

// KernelDesc is the simulator's view of one kernel launch: resource
// usage plus the work it performs. Kernel implementations (CUTLASS
// templates, Ansor schedules, vendor primitives) lower themselves to
// this descriptor.
type KernelDesc struct {
	Name string

	GridBlocks      int // total threadblocks
	ThreadsPerBlock int
	RegsPerThread   int
	SharedMemBytes  int // per block

	FLOPs        float64 // useful floating-point work
	GlobalLoadB  float64 // bytes read from global memory
	GlobalStoreB float64 // bytes written to global memory

	OpClass OpClass
	DType   tensor.DType

	// AlignmentElems is the vector width, in elements, of global memory
	// accesses (CUTLASS "alignment"): 8 means 128-bit ldg for FP16.
	AlignmentElems int

	// IssueEff is the fraction of peak math issue the inner loop
	// sustains (pipeline drain, predication, instruction mix). Computed
	// by the kernel template from its tile configuration.
	IssueEff float64

	// MemEff is the achieved fraction of DRAM bandwidth ignoring the
	// vectorization penalty (coalescing and L2 behaviour).
	MemEff float64

	// SMEMTrafficB is bytes moved through shared memory (staging );
	// only significant for shared-memory-resident persistent kernels.
	SMEMTrafficB float64

	// BankConflictWays is the average n-way shared memory bank conflict
	// (1 = conflict free). Persistent kernels engineer their layouts to
	// keep this at 1.
	BankConflictWays float64
}

// Occupancy summarizes how many blocks/warps of a kernel fit per SM and
// which resource limits it.
type Occupancy struct {
	BlocksPerSM int
	WarpsPerSM  int
	Limiter     string  // "warps", "blocks", "registers", "smem", "threads"
	Fraction    float64 // warps resident / max warps
}

// Occupancy computes the residency of k on d using the standard CUDA
// occupancy rules (block-granular register and shared-memory packing).
func (d *Device) Occupancy(k KernelDesc) Occupancy {
	warpsPerBlock := (k.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize
	if warpsPerBlock == 0 {
		warpsPerBlock = 1
	}

	lim := func(v int, name string, cur int, curName string) (int, string) {
		if v < cur {
			return v, name
		}
		return cur, curName
	}

	blocks, limiter := d.MaxBlocks, "blocks"
	blocks, limiter = lim(d.MaxWarps/warpsPerBlock, "warps", blocks, limiter)
	blocks, limiter = lim(d.MaxThreads/k.ThreadsPerBlock, "threads", blocks, limiter)
	if k.RegsPerThread > 0 {
		regsPerBlock := k.RegsPerThread * k.ThreadsPerBlock
		blocks, limiter = lim(d.RegistersPerSM/regsPerBlock, "registers", blocks, limiter)
	}
	if k.SharedMemBytes > 0 {
		blocks, limiter = lim(d.SharedMemPerSM/k.SharedMemBytes, "smem", blocks, limiter)
	}
	if blocks < 0 {
		blocks = 0
	}
	occ := Occupancy{BlocksPerSM: blocks, WarpsPerSM: blocks * warpsPerBlock, Limiter: limiter}
	occ.Fraction = float64(occ.WarpsPerSM) / float64(d.MaxWarps)
	return occ
}

// vectorEff maps an access alignment (in elements of the kernel dtype)
// to the achieved fraction of peak DRAM bandwidth. The largest
// vectorized access on NVIDIA GPUs is 128 bits; narrower accesses
// issue more instructions and more predicates per byte (paper §3.2.3).
func vectorEff(alignElems int, dt tensor.DType) float64 {
	bits := alignElems * dt.Size() * 8
	switch {
	case bits >= 128:
		return 1.0
	case bits >= 64:
		return 0.82
	case bits >= 32:
		return 0.58
	default:
		return 0.40
	}
}

// latencyHidingEff models how well resident warps hide memory and
// pipeline latency: with 8+ warps per SM a Turing SM is essentially
// saturated; below that, throughput degrades smoothly.
func latencyHidingEff(warpsPerSM int) float64 {
	if warpsPerSM <= 0 {
		return 0.05
	}
	e := float64(warpsPerSM) / 8.0
	if e > 1 {
		return 1
	}
	// A lone warp still achieves ~18% of peak on these pipelines.
	return 0.18 + 0.82*e
}

// LatencyHidingEff exposes the resident-warp latency-hiding curve for
// compile-time cost modeling: learned rankers (internal/costmodel)
// build features from the same analytic curves the simulator prices
// with, without ever calling the priced time itself.
func LatencyHidingEff(warpsPerSM int) float64 { return latencyHidingEff(warpsPerSM) }

// VectorEff exposes the global-access vector-width efficiency curve
// (see LatencyHidingEff).
func VectorEff(alignElems int, dt tensor.DType) float64 { return vectorEff(alignElems, dt) }

// perSMBWFactor controls how many SMs it takes to saturate DRAM: each
// SM can draw at most perSMBWFactor * (DRAMBW / SMs), so roughly
// SMs/perSMBWFactor active SMs reach full bandwidth.
const perSMBWFactor = 3.2

// TimeBreakdown reports the roofline components for diagnostics.
type TimeBreakdown struct {
	Total, Launch, Compute, Memory, SMEM float64
	Occ                                  Occupancy
	// Rounds is the number of block-scheduling waves (wave
	// quantization: a 1.01-wave grid costs two waves).
	Rounds int
	// ActiveSMs is how many SMs hold at least one block in steady state.
	ActiveSMs int
	// LatencyEff is the latency-hiding efficiency from resident warps.
	LatencyEff float64
}

// Breakdown prices one launch of k on d from first principles and
// returns all roofline components. KernelTime returns just the total.
//
// Compute model: the grid is distributed round-robin over SMs; each SM
// holds at most Occupancy.BlocksPerSM blocks concurrently, so the grid
// drains in ceil(grid/(SMs*blocksPerSM)) rounds (wave quantization —
// paper §3.2.2: "small problem sizes need small threadblock sizes to
// launch enough threadblocks to keep more SMs busy"). A grid smaller
// than the SM count leaves SMs idle; an SM holding fewer warps than
// needed to hide pipeline latency runs below peak.
func (d *Device) Breakdown(k KernelDesc) TimeBreakdown {
	occ := d.Occupancy(k)
	tb := TimeBreakdown{Occ: occ, Launch: d.LaunchUs * 1e-6}
	if occ.BlocksPerSM == 0 || k.GridBlocks == 0 {
		tb.Total = math.Inf(1)
		return tb
	}

	grid := k.GridBlocks
	slots := occ.BlocksPerSM * d.SMs
	tb.Rounds = (grid + slots - 1) / slots

	// Blocks running concurrently in a full wave, and the SMs they touch.
	conc := grid
	if conc > slots {
		conc = slots
	}
	activeSMs := d.SMs
	if conc < activeSMs {
		activeSMs = conc
	}
	tb.ActiveSMs = activeSMs
	blocksPerActiveSM := float64(conc) / float64(activeSMs)
	warpsPerBlock := (k.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize
	lat := latencyHidingEff(int(math.Round(blocksPerActiveSM * float64(warpsPerBlock))))
	tb.LatencyEff = lat

	issue := k.IssueEff
	if issue <= 0 {
		issue = 1
	}
	memEff := k.MemEff
	if memEff <= 0 {
		memEff = 1
	}

	peak := d.PeakTFLOPS(k.OpClass, k.DType) * 1e12
	if k.FLOPs > 0 {
		perBlock := k.FLOPs / float64(grid)
		perSMThroughput := peak / float64(d.SMs) * issue * lat
		// Block-granular wave quantization: full waves load every SM
		// with blocksPerSM blocks; the tail wave distributes its
		// remainder round-robin, so the critical SM runs
		// ceil(tail/SMs) extra blocks. Blocks are indivisible — a
		// 1.01-wave grid really does cost a second (cheap) wave.
		fullWaves := grid / slots
		tail := grid % slots
		criticalBlocks := float64(fullWaves * occ.BlocksPerSM)
		if tail > 0 {
			criticalBlocks += math.Ceil(float64(tail) / float64(d.SMs))
		}
		tb.Compute = criticalBlocks * perBlock / perSMThroughput
	}

	// Memory: device bandwidth capped by how many SMs are issuing.
	vec := vectorEff(k.AlignmentElems, k.DType)
	bw := d.DRAMBWGBs * 1e9
	bwCap := math.Min(bw, float64(activeSMs)*perSMBWFactor*bw/float64(d.SMs))
	tb.Memory = (k.GlobalLoadB + k.GlobalStoreB) / (bwCap * memEff * vec)

	if k.SMEMTrafficB > 0 {
		conflicts := math.Max(1, k.BankConflictWays)
		smemBW := d.SMEMBWGBsSM * 1e9 * float64(activeSMs)
		tb.SMEM = k.SMEMTrafficB * conflicts / smemBW
	}

	// Compute and memory pipelines overlap; the kernel runs at the
	// bottleneck. Shared-memory staging sits on the critical path
	// between pipeline stages, so a fraction of it is exposed.
	tb.Total = tb.Launch + math.Max(tb.Compute, tb.Memory) + 0.35*tb.SMEM
	return tb
}

// KernelTime prices one launch of k on d, returning seconds. It is a
// deterministic pure function; measurement noise is added by Measure.
func (d *Device) KernelTime(k KernelDesc) float64 {
	return d.Breakdown(k).Total
}
