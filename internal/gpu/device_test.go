package gpu

import (
	"math"
	"math/rand"
	"testing"

	"bolt/internal/tensor"
)

func gemmDesc(tbM, tbN int, m, n, k int) KernelDesc {
	return KernelDesc{
		Name:            "test_gemm",
		GridBlocks:      ((m + tbM - 1) / tbM) * ((n + tbN - 1) / tbN),
		ThreadsPerBlock: 128,
		RegsPerThread:   128,
		SharedMemBytes:  48 << 10,
		FLOPs:           2 * float64(m) * float64(n) * float64(k),
		GlobalLoadB:     float64(m*k+k*n) * 2,
		GlobalStoreB:    float64(m*n) * 2,
		OpClass:         OpClassTensorOp,
		DType:           tensor.FP16,
		AlignmentElems:  8,
		IssueEff:        0.85,
		MemEff:          0.9,
	}
}

func TestDeviceSpecs(t *testing.T) {
	d := T4()
	if d.Arch != SM75 || d.SMs != 40 {
		t.Error("T4 spec wrong")
	}
	if d.Arch.String() != "sm_75" {
		t.Errorf("Arch.String = %q", d.Arch.String())
	}
	a := A100()
	if a.Arch != SM80 || a.TensorFP16 != 312 {
		t.Error("A100 spec wrong")
	}
}

func TestPeakTFLOPS(t *testing.T) {
	d := T4()
	if d.PeakTFLOPS(OpClassTensorOp, tensor.FP16) != 65 {
		t.Error("tensor FP16 peak wrong")
	}
	if d.PeakTFLOPS(OpClassSIMT, tensor.FP16) != 16.2 {
		t.Error("SIMT FP16 peak wrong")
	}
	if d.PeakTFLOPS(OpClassSIMT, tensor.FP32) != 8.1 {
		t.Error("SIMT FP32 peak wrong")
	}
	// No FP32 tensor cores on Turing: falls back to SIMT rate.
	if d.PeakTFLOPS(OpClassTensorOp, tensor.FP32) != 8.1 {
		t.Error("FP32 TensorOp should fall back to SIMT")
	}
	if d.PeakTFLOPS(OpClassTensorOp, tensor.INT8) != 130 {
		t.Error("tensor INT8 peak wrong")
	}
	if d.PeakTFLOPS(OpClassSIMT, tensor.INT8) != 4*8.1 {
		t.Error("SIMT INT8 (dp4a) peak wrong")
	}
}

func TestOccupancyLimiters(t *testing.T) {
	d := T4()

	// Small kernel: limited by max blocks.
	k := KernelDesc{ThreadsPerBlock: 64, RegsPerThread: 16, SharedMemBytes: 0}
	occ := d.Occupancy(k)
	if occ.Limiter != "blocks" || occ.BlocksPerSM != 16 {
		t.Errorf("expected blocks-limited 16, got %+v", occ)
	}

	// Register-limited: 255 regs/thread * 256 threads = 65280 regs/block.
	k = KernelDesc{ThreadsPerBlock: 256, RegsPerThread: 255}
	occ = d.Occupancy(k)
	if occ.Limiter != "registers" || occ.BlocksPerSM != 1 {
		t.Errorf("expected registers-limited 1, got %+v", occ)
	}

	// SMEM-limited: 33 KB/block -> 1 block per 64 KB SM.
	k = KernelDesc{ThreadsPerBlock: 128, RegsPerThread: 32, SharedMemBytes: 33 << 10}
	occ = d.Occupancy(k)
	if occ.Limiter != "smem" || occ.BlocksPerSM != 1 {
		t.Errorf("expected smem-limited 1, got %+v", occ)
	}

	// Warp-limited: 1024 threads = 32 warps = all warps in one block.
	k = KernelDesc{ThreadsPerBlock: 1024, RegsPerThread: 32}
	occ = d.Occupancy(k)
	if occ.WarpsPerSM != 32 || occ.Fraction != 1.0 {
		t.Errorf("expected full occupancy, got %+v", occ)
	}

	// Oversubscribed: cannot fit at all.
	k = KernelDesc{ThreadsPerBlock: 256, RegsPerThread: 255, SharedMemBytes: 70 << 10}
	occ = d.Occupancy(k)
	if occ.BlocksPerSM != 0 {
		t.Errorf("expected zero occupancy, got %+v", occ)
	}
}

func TestKernelTimeComputeBound(t *testing.T) {
	d := T4()
	// Big square GEMM is compute bound on tensor cores.
	k := gemmDesc(128, 128, 2048, 2048, 2048)
	bd := d.Breakdown(k)
	if bd.Compute <= bd.Memory {
		t.Errorf("2048^3 GEMM should be compute bound: %+v", bd)
	}
	// Achieved TFLOPS should be a plausible fraction of tensor peak.
	tflops := k.FLOPs / d.KernelTime(k) / 1e12
	if tflops < 20 || tflops > 65 {
		t.Errorf("achieved %f TFLOPS implausible for T4 FP16", tflops)
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	d := T4()
	// Skinny GEMM: M=32 — memory bound.
	k := gemmDesc(32, 128, 32, 768, 768)
	bd := d.Breakdown(k)
	if bd.Memory <= bd.Compute {
		t.Errorf("skinny GEMM should be memory bound: %+v", bd)
	}
}

func TestTensorCoreSpeedup(t *testing.T) {
	d := T4()
	tc := gemmDesc(128, 128, 2048, 2048, 2048)
	simt := tc
	simt.OpClass = OpClassSIMT
	ratio := d.KernelTime(simt) / d.KernelTime(tc)
	// Tensor cores are 4x the HFMA2 rate; with equal efficiencies the
	// time ratio should reflect that.
	if ratio < 3 || ratio > 5 {
		t.Errorf("tensor core speedup = %f, want ~4x", ratio)
	}
}

func TestAlignmentPenalty(t *testing.T) {
	d := T4()
	aligned := gemmDesc(64, 64, 32, 768, 768) // memory bound
	unaligned := aligned
	unaligned.AlignmentElems = 2
	ratio := d.KernelTime(unaligned) / d.KernelTime(aligned)
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("alignment-2 penalty = %f, want 1.3-2.5x on memory-bound kernel", ratio)
	}
	// Alignment must not matter for a purely compute-bound kernel.
	big := gemmDesc(128, 128, 4096, 4096, 4096)
	bigUnaligned := big
	bigUnaligned.AlignmentElems = 2
	r2 := d.KernelTime(bigUnaligned) / d.KernelTime(big)
	if r2 > 1.05 {
		t.Errorf("alignment should not slow compute-bound kernel: ratio %f", r2)
	}
}

func TestWaveQuantization(t *testing.T) {
	d := T4()
	// Tiny grid: most SMs idle -> large threadblocks hurt.
	small := gemmDesc(256, 128, 256, 128, 4096) // 1 block
	smaller := gemmDesc(64, 32, 256, 128, 4096) // 16 blocks
	if d.KernelTime(smaller) >= d.KernelTime(small) {
		t.Error("splitting a tiny grid into more blocks should help occupancy")
	}
}

func TestLaunchOverheadDominatesShortKernels(t *testing.T) {
	d := T4()
	k := gemmDesc(16, 16, 16, 16, 16)
	total := d.KernelTime(k)
	if total < d.LaunchUs*1e-6 {
		t.Error("kernel cannot be faster than launch overhead")
	}
	if (total-d.LaunchUs*1e-6)/total > 0.5 {
		t.Error("tiny kernel should be launch-overhead dominated")
	}
}

func TestZeroOccupancyIsInf(t *testing.T) {
	d := T4()
	k := gemmDesc(128, 128, 1024, 1024, 1024)
	k.SharedMemBytes = 100 << 10
	if !math.IsInf(d.KernelTime(k), 1) {
		t.Error("unlaunchable kernel should price as +Inf")
	}
}

func TestSMEMTrafficCost(t *testing.T) {
	d := T4()
	base := gemmDesc(128, 128, 4096, 1024, 64)
	withSMEM := base
	withSMEM.SMEMTrafficB = 4 * base.GlobalStoreB
	if d.KernelTime(withSMEM) <= d.KernelTime(base) {
		t.Error("SMEM staging should add time")
	}
	conflicted := withSMEM
	conflicted.BankConflictWays = 4
	if d.KernelTime(conflicted) <= d.KernelTime(withSMEM) {
		t.Error("bank conflicts should add time")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	d := T4()
	k := gemmDesc(128, 128, 1280, 3072, 768)
	bd := d.Breakdown(k)
	want := d.KernelTime(k)
	if math.Abs(bd.Total-want)/want > 1e-9 {
		t.Errorf("Breakdown.Total %g != KernelTime %g", bd.Total, want)
	}
}

func TestVectorEffOrdering(t *testing.T) {
	v8 := vectorEff(8, tensor.FP16)
	v4 := vectorEff(4, tensor.FP16)
	v2 := vectorEff(2, tensor.FP16)
	v1 := vectorEff(1, tensor.FP16)
	if !(v8 > v4 && v4 > v2 && v2 > v1) {
		t.Errorf("vector efficiency must be monotone: %f %f %f %f", v8, v4, v2, v1)
	}
	if v8 != 1.0 {
		t.Error("128-bit access should be full bandwidth")
	}
	// FP32 alignment 4 = 128 bits = full efficiency.
	if vectorEff(4, tensor.FP32) != 1.0 {
		t.Error("FP32 alignment 4 is 128-bit")
	}
}

func TestLatencyHiding(t *testing.T) {
	if latencyHidingEff(8) != 1 || latencyHidingEff(32) != 1 {
		t.Error("8+ warps should fully hide latency")
	}
	if !(latencyHidingEff(1) < latencyHidingEff(4) && latencyHidingEff(4) < 1) {
		t.Error("latency hiding must increase with warps")
	}
	if latencyHidingEff(0) <= 0 {
		t.Error("zero warps must still be positive to avoid div by zero")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(0.5)
	c.Advance(-3) // ignored
	if c.Elapsed() != 2 {
		t.Errorf("Elapsed = %f, want 2", c.Elapsed())
	}
	if c.ElapsedDuration().Seconds() != 2 {
		t.Error("ElapsedDuration wrong")
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset failed")
	}
}

func TestMeasureChargesClock(t *testing.T) {
	d := T4()
	k := gemmDesc(128, 128, 1024, 1024, 1024)
	base := d.KernelTime(k)
	var clock Clock
	opts := MeasureOptions{Repeats: 10, Warmup: 2, NoiseStdDev: 0}
	mean := Measure(d, k, opts, nil, &clock)
	if math.Abs(mean-base) > 1e-12 {
		t.Errorf("noiseless mean %g != base %g", mean, base)
	}
	want := base * 12 // 10 repeats + 2 warmup
	if math.Abs(clock.Elapsed()-want)/want > 1e-9 {
		t.Errorf("clock charged %g, want %g", clock.Elapsed(), want)
	}
}

func TestMeasureNoiseIsBounded(t *testing.T) {
	d := T4()
	k := gemmDesc(128, 128, 1024, 1024, 1024)
	base := d.KernelTime(k)
	rng := rand.New(rand.NewSource(11))
	mean := Measure(d, k, MeasureOptions{Repeats: 500, NoiseStdDev: 0.02}, rng, nil)
	if math.Abs(mean-base)/base > 0.01 {
		t.Errorf("mean of 500 noisy runs %g strays >1%% from base %g", mean, base)
	}
}
