package gpu

// Simulated compilation-cost constants for the final module build: the
// stage after kernel selection where every chosen CUTLASS template is
// instantiated and compiled (nvcc) into the single runtime file of
// paper Figure 3. This build — not the candidate search — is most of
// Bolt's minutes in Figure 10b, so it is charged explicitly to the
// tuning clock.
const (
	// ModuleBuildBaseSeconds is the fixed cost of assembling and
	// linking the runtime file (host glue, fallback TVM kernels,
	// parameter packing) regardless of how many templates were chosen.
	ModuleBuildBaseSeconds = 30.0
	// ModuleBuildPerKernelSeconds is the nvcc cost of instantiating and
	// compiling one selected template into the runtime file.
	ModuleBuildPerKernelSeconds = 8.0
)

// ModuleBuildSeconds prices the final module build for a module with
// the given number of templated (anchor) kernels.
func ModuleBuildSeconds(templatedKernels int) float64 {
	return ModuleBuildBaseSeconds + ModuleBuildPerKernelSeconds*float64(templatedKernels)
}
