package gpu

import (
	"sync"
	"testing"
	"time"
)

func TestClockAdvanceElapsed(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(-3) // ignored
	c.Advance(0)  // ignored
	c.Advance(0.5)
	if got := c.Elapsed(); got != 2.0 {
		t.Errorf("elapsed %g, want 2.0", got)
	}
	if got := c.ElapsedDuration(); got != 2*time.Second {
		t.Errorf("duration %v, want 2s", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("reset did not zero the clock")
	}
}

// TestClockConcurrentAdvance is the -race regression test for the
// profiling pool: many goroutines advance and read one clock. Run with
// `go test -race`.
func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(0.001)
				_ = c.Elapsed()
			}
		}()
	}
	wg.Wait()
	want := float64(workers*perWorker) * 0.001
	got := c.Elapsed()
	if diff := got - want; diff < -1e-6 || diff > 1e-6 {
		t.Errorf("concurrent advances lost updates: elapsed %g, want %g", got, want)
	}
}
