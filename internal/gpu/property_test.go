package gpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bolt/internal/tensor"
)

// randDesc draws a random but structurally sane kernel descriptor.
func randDesc(rng *rand.Rand) KernelDesc {
	threads := 32 * (1 + rng.Intn(8))
	return KernelDesc{
		Name:            "prop",
		GridBlocks:      1 + rng.Intn(4096),
		ThreadsPerBlock: threads,
		RegsPerThread:   16 + rng.Intn(64),
		SharedMemBytes:  (1 + rng.Intn(24)) << 10,
		FLOPs:           float64(1+rng.Intn(1<<20)) * 1024,
		GlobalLoadB:     float64(1+rng.Intn(1<<20)) * 16,
		GlobalStoreB:    float64(1+rng.Intn(1<<18)) * 16,
		OpClass:         OpClass(rng.Intn(2)),
		DType:           tensor.FP16,
		AlignmentElems:  []int{1, 2, 4, 8}[rng.Intn(4)],
		IssueEff:        0.3 + 0.7*rng.Float64(),
		MemEff:          0.3 + 0.7*rng.Float64(),
	}
}

// Property: kernel time is strictly positive and finite for launchable
// kernels, and at least the launch overhead.
func TestTimePositiveProperty(t *testing.T) {
	d := T4()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k := randDesc(rng)
		tm := d.KernelTime(k)
		if math.IsNaN(tm) || tm < d.LaunchUs*1e-6 {
			t.Fatalf("time %g invalid for %+v", tm, k)
		}
	}
}

// Property: adding FLOPs never makes a kernel faster.
func TestMonotoneInFlopsProperty(t *testing.T) {
	d := T4()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		k := randDesc(rng)
		t1 := d.KernelTime(k)
		k2 := k
		k2.FLOPs *= 1 + rng.Float64()
		if d.KernelTime(k2) < t1-1e-15 {
			t.Fatalf("more FLOPs made kernel faster: %+v", k)
		}
	}
}

// Property: adding memory traffic never makes a kernel faster.
func TestMonotoneInBytesProperty(t *testing.T) {
	d := T4()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		k := randDesc(rng)
		t1 := d.KernelTime(k)
		k2 := k
		k2.GlobalLoadB *= 1 + rng.Float64()
		k2.GlobalStoreB *= 1 + rng.Float64()
		if d.KernelTime(k2) < t1-1e-15 {
			t.Fatalf("more bytes made kernel faster: %+v", k)
		}
	}
}

// Property: wider alignment never hurts.
func TestMonotoneInAlignmentProperty(t *testing.T) {
	d := T4()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		k := randDesc(rng)
		k.AlignmentElems = 2
		t2 := d.KernelTime(k)
		k.AlignmentElems = 8
		t8 := d.KernelTime(k)
		if t8 > t2+1e-15 {
			t.Fatalf("alignment 8 slower than 2: %+v", k)
		}
	}
}

// Property: occupancy never exceeds device limits and the limiter is
// always one of the known resources.
func TestOccupancyBoundsProperty(t *testing.T) {
	d := T4()
	f := func(threads8, regs, smemKB uint8) bool {
		k := KernelDesc{
			ThreadsPerBlock: 32 * (1 + int(threads8)%32),
			RegsPerThread:   1 + int(regs),
			SharedMemBytes:  int(smemKB) << 10,
		}
		occ := d.Occupancy(k)
		if occ.WarpsPerSM > d.MaxWarps || occ.BlocksPerSM > d.MaxBlocks {
			return false
		}
		if occ.BlocksPerSM > 0 {
			if occ.BlocksPerSM*k.ThreadsPerBlock > d.MaxThreads {
				return false
			}
			if occ.BlocksPerSM*k.RegsPerThread*k.ThreadsPerBlock > d.RegistersPerSM {
				return false
			}
			if k.SharedMemBytes > 0 && occ.BlocksPerSM*k.SharedMemBytes > d.SharedMemPerSM {
				return false
			}
		}
		switch occ.Limiter {
		case "warps", "blocks", "registers", "smem", "threads":
		default:
			return false
		}
		return occ.Fraction >= 0 && occ.Fraction <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: splitting a kernel's work across two launches is never
// cheaper than one launch of the combined kernel (launch overhead
// makes fusion worthwhile — the premise behind Figure 4).
func TestFusionBeatsSplitProperty(t *testing.T) {
	d := T4()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		k := randDesc(rng)
		full := d.KernelTime(k)
		half := k
		half.FLOPs /= 2
		half.GlobalLoadB /= 2
		half.GlobalStoreB /= 2
		half.GridBlocks = (k.GridBlocks + 1) / 2
		split := 2 * d.KernelTime(half)
		if split < full-1e-12 {
			t.Fatalf("two half-launches cheaper than one: %+v", k)
		}
	}
}
