package gpu

import (
	"math/rand"
	"sync"
	"time"
)

// Clock is a simulated wall clock. Tuners charge it for compilation,
// kernel measurement, and search bookkeeping so that "tuning time"
// (the paper's Figure 10b) can be reported without actually burning
// hours: the simulator executes in microseconds but the clock records
// what the same work would have cost on the real testbed.
//
// Clocks are safe for concurrent use: the profiling pool advances
// per-worker clocks from multiple goroutines. Do not copy a Clock
// after first use.
type Clock struct {
	mu      sync.Mutex
	elapsed float64 // seconds
}

// Advance adds dt seconds (negative values are ignored).
func (c *Clock) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	c.mu.Lock()
	c.elapsed += dt
	c.mu.Unlock()
}

// Elapsed returns the accumulated simulated seconds.
func (c *Clock) Elapsed() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// ElapsedDuration returns the accumulated time as a time.Duration.
func (c *Clock) ElapsedDuration() time.Duration {
	return time.Duration(c.Elapsed() * float64(time.Second))
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

// MeasureOptions configures a simulated on-device measurement.
type MeasureOptions struct {
	// Repeats is the number of timed runs averaged together.
	Repeats int
	// Warmup runs are executed (and charged to the clock) but not timed.
	Warmup int
	// NoiseStdDev is the relative standard deviation of per-run jitter.
	NoiseStdDev float64
	// LaunchOverhead is the fixed host-side cost per run (launch, sync,
	// and timer plumbing) charged to the clock but never included in
	// the returned kernel time — it is why measuring hundreds of
	// candidates costs real wall-clock even when each kernel finishes
	// in microseconds. 0 models an ideal overhead-free harness.
	LaunchOverhead float64
}

// DefaultMeasure matches the evaluation methodology in the paper's
// microbenchmarks (1000 timed runs after warmup).
func DefaultMeasure() MeasureOptions {
	return MeasureOptions{Repeats: 1000, Warmup: 10, NoiseStdDev: 0.015}
}

// QuickMeasure is the cheaper setting tuners use per candidate.
func QuickMeasure() MeasureOptions {
	return MeasureOptions{Repeats: 3, Warmup: 1, NoiseStdDev: 0.03}
}

// Measure simulates timing kernel k on device d: it perturbs the model
// time with multiplicative Gaussian noise per repeat, charges the full
// cost of all runs to clock (if non-nil), and returns the mean observed
// time in seconds. rng may be nil for a noiseless measurement.
func Measure(d *Device, k KernelDesc, opts MeasureOptions, rng *rand.Rand, clock *Clock) float64 {
	base := d.KernelTime(k)
	if opts.Repeats <= 0 {
		opts.Repeats = 1
	}
	total := 0.0
	for i := 0; i < opts.Warmup; i++ {
		if clock != nil {
			clock.Advance(base + opts.LaunchOverhead)
		}
	}
	for i := 0; i < opts.Repeats; i++ {
		t := base
		if rng != nil && opts.NoiseStdDev > 0 {
			t *= 1 + rng.NormFloat64()*opts.NoiseStdDev
			if t < 0.2*base {
				t = 0.2 * base
			}
		}
		total += t
		if clock != nil {
			clock.Advance(t + opts.LaunchOverhead)
		}
	}
	return total / float64(opts.Repeats)
}
